"""Concentration and bias bounds for sampling without replacement.

This module is the mathematical core of the paper (Section 2.2, Lemma 1–4):

* :func:`bias_bound` — Lemma 1: the plug-in entropy of a without-replacement
  sample underestimates the population empirical entropy by at most
  ``b(α) = log2(1 + (u_α - 1)(N - M) / (M (N - 1)))``.
* :func:`beta_sensitivity` — the perturbation sensitivity
  ``β = log2(M / (M-1)) + log2(M-1) / M`` of the sample entropy under a
  single swap between the prefix and the suffix of the permutation.
* :func:`permutation_half_width` — Lemma 2 (El-Yaniv & Pechyony) inverted
  into the confidence half-width ``λ`` of Equation 6.
* :func:`entropy_interval` / :func:`joint_entropy_interval` /
  :func:`mutual_information_interval` — Lemma 3 and its Section 4
  extension: confidence intervals ``[lower, upper]`` such that the true
  population score lies inside with probability at least ``1 - p`` (per
  bound; the MI interval consumes three bounds, hence ``1 - 3p``).
* :func:`sample_size_for_width` — Lemma 4: the sample size ``M`` at which
  the interval width ``2λ + b(α)`` is guaranteed to drop below a target
  ``κ``.

All bounds collapse to zero width at ``M = N`` (the sample is the whole
dataset), which the algorithms rely on for guaranteed termination.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = [
    "ConfidenceInterval",
    "MutualInformationInterval",
    "beta_sensitivity",
    "bias_bound",
    "entropy_interval",
    "entropy_intervals",
    "joint_entropy_interval",
    "loose_beta_sensitivity",
    "mi_intervals",
    "mutual_information_interval",
    "permutation_half_width",
    "sample_size_for_width",
]


def _check_sample_sizes(sample_size: int, population_size: int) -> None:
    if population_size < 1:
        raise ParameterError(f"population size must be >= 1, got {population_size}")
    if not 1 <= sample_size <= population_size:
        raise ParameterError(
            f"sample size must be in [1, {population_size}], got {sample_size}"
        )


def _check_probability(p: float, name: str = "failure probability") -> None:
    if not 0.0 < p < 1.0:
        raise ParameterError(f"{name} must be in (0, 1), got {p}")


def beta_sensitivity(sample_size: int) -> float:
    """Swap sensitivity ``β`` of the sample entropy (paper, before Lemma 3).

    ``β = log2(M / (M - 1)) + log2(M - 1) / M``. Exchanging one record of
    the sampled prefix with one record of the unsampled suffix changes the
    sample entropy by strictly less than ``2 log2(M) / M``; the paper uses
    this tighter closed form. Defined for ``M >= 2``; for ``M = 1`` (a
    single record has zero entropy regardless of its value, but the swap
    bound degenerates) we return the trivial bound ``1.0``, and for
    ``M = 2`` the formula itself gives ``1.0``.
    """
    if sample_size < 1:
        raise ParameterError(f"sample size must be >= 1, got {sample_size}")
    if sample_size == 1:
        return 1.0
    m = float(sample_size)
    return math.log2(m / (m - 1.0)) + math.log2(m - 1.0) / m


def loose_beta_sensitivity(sample_size: int) -> float:
    """The paper's *loose* sensitivity upper bound ``2 log2(M) / M``.

    The paper proves ``β < 2 log2(M)/M`` and uses the loose form inside
    the Lemma 4 / Theorem 2 analysis; the algorithms themselves use the
    tight closed form (:func:`beta_sensitivity`). This bound exists so
    the A5 ablation bench can quantify what the tight form buys.
    """
    if sample_size < 1:
        raise ParameterError(f"sample size must be >= 1, got {sample_size}")
    if sample_size < 3:
        return 1.0  # 2 log2(M)/M is not an upper bound below M = 3
    return 2.0 * math.log2(sample_size) / sample_size


def permutation_half_width(
    sample_size: int,
    population_size: int,
    failure_probability: float,
    *,
    beta_mode: str = "tight",
) -> float:
    """Confidence half-width ``λ`` of Equation 6.

    Inverts the Lemma 2 tail bound at probability ``failure_probability``
    (the per-side budget is ``failure_probability / 2``, matching the
    ``ln(2/p)`` in the paper's formula, so the *two-sided* interval
    ``H_S ± λ`` around the expectation fails with probability at most
    ``failure_probability``):

    ``λ = β √( M (N - M) ln(2/p) / (2 (N - 1/2) (1 - 1/(2 max(M, N-M)))) )``

    ``beta_mode`` selects the sensitivity: ``"tight"`` (paper closed
    form, default) or ``"loose"`` (the ``2 log2(M)/M`` analysis bound —
    ablation only). Returns ``0.0`` when ``M = N`` (the sample is the
    population, there is no randomness left).
    """
    _check_sample_sizes(sample_size, population_size)
    _check_probability(failure_probability)
    m, n = sample_size, population_size
    if m == n:
        return 0.0
    if beta_mode == "tight":
        beta = beta_sensitivity(m)
    elif beta_mode == "loose":
        beta = loose_beta_sensitivity(m)
    else:
        raise ParameterError(f"unknown beta_mode {beta_mode!r}")
    slack = 1.0 - 1.0 / (2.0 * max(m, n - m))
    # Lemma 3's deviation term is stated with ln(2/p_f) — a genuine
    # natural log, not an entropy quantity in bits.
    inner = (m * (n - m) * math.log(2.0 / failure_probability)) / (  # noqa: SWP001
        2.0 * (n - 0.5) * slack
    )
    return beta * math.sqrt(inner)


def bias_bound(support_size: int, sample_size: int, population_size: int) -> float:
    """Bias bound ``b(α)`` of Lemma 1 / Equation 7.

    ``b(α) = log2(1 + (u_α - 1)(N - M) / (M (N - 1)))`` bounds
    ``H_D(α) - E[H_S(α)]`` from above (the plug-in sample entropy is biased
    *low*). Zero when ``M = N``, when ``u_α = 1`` (a constant column), or
    when ``N = 1``.
    """
    _check_sample_sizes(sample_size, population_size)
    if support_size < 1:
        raise ParameterError(f"support size must be >= 1, got {support_size}")
    m, n, u = sample_size, population_size, support_size
    if m == n or u == 1 or n == 1:
        return 0.0
    return math.log2(1.0 + (u - 1.0) * (n - m) / (m * (n - 1.0)))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A one-attribute entropy confidence interval (Lemma 3).

    Attributes
    ----------
    estimate:
        The plug-in sample entropy ``H_S(α)`` the interval was built from.
    lower, upper:
        ``H(α) ∈ [lower, upper]`` with probability at least ``1 - p``.
        ``lower = max(0, H_S - λ)``; ``upper = H_S + λ + b``. (Entropy is
        non-negative, so clipping the lower bound at zero only tightens
        it.)
    half_width:
        The concentration half-width ``λ``.
    bias:
        The bias allowance ``b(α)``.

    The *uncertainty width* the stopping rules reason about is
    ``2λ + b(α)`` (``width`` property) — note this intentionally ignores
    the zero-clipping of ``lower``, matching the paper's algebra
    ``H̲ = H̄ - 2λ - b``.
    """

    estimate: float
    lower: float
    upper: float
    half_width: float
    bias: float

    @property
    def width(self) -> float:
        """The paper's interval width ``2λ + b(α)`` (before zero-clipping)."""
        return 2.0 * self.half_width + self.bias

    @property
    def midpoint(self) -> float:
        """The point estimate ``(H̲ + H̄) / 2`` used by the filtering rules.

        Computed from the *unclipped* lower bound so that the Case-1
        algebra of Theorem 3 holds exactly.
        """
        unclipped_lower = self.upper - self.width
        return (unclipped_lower + self.upper) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the (clipped) interval."""
        return self.lower <= value <= self.upper


def entropy_interval(
    sample_entropy: float,
    support_size: int,
    sample_size: int,
    population_size: int,
    failure_probability: float,
    *,
    beta_mode: str = "tight",
) -> ConfidenceInterval:
    """Lemma 3 interval for one attribute's empirical entropy.

    Parameters
    ----------
    sample_entropy:
        ``H_S(α)`` computed on the first ``sample_size`` records of the
        shuffled data.
    support_size:
        ``u_α`` of the attribute on the *population* (the store's declared
        support size).
    sample_size, population_size:
        ``M`` and ``N``.
    failure_probability:
        Per-attribute, per-iteration budget ``p`` (the algorithms pass
        ``p'_f``).
    """
    return entropy_intervals(
        (sample_entropy,),
        (support_size,),
        sample_size,
        population_size,
        failure_probability,
        beta_mode=beta_mode,
    )[0]


def entropy_intervals(
    sample_entropies: Sequence[float],
    support_sizes: Sequence[int],
    sample_size: int,
    population_size: int,
    failure_probability: float,
    *,
    beta_mode: str = "tight",
) -> list[ConfidenceInterval]:
    """Lemma 3 intervals for a batch of attributes at one sample size.

    The batched form of :func:`entropy_interval` (which delegates here).
    All attributes of one adaptive iteration share ``(M, N, p)``, so the
    half-width ``λ`` is computed once for the batch, and the bias bound
    ``b(α)`` once per distinct support size — the identical scalar
    functions evaluate both, so every interval is bit-for-bit equal to
    its scalar counterpart.
    """
    if len(sample_entropies) != len(support_sizes):
        raise ParameterError(
            f"got {len(sample_entropies)} sample entropies but"
            f" {len(support_sizes)} support sizes"
        )
    lam = permutation_half_width(
        sample_size, population_size, failure_probability, beta_mode=beta_mode
    )
    bias_cache: dict[int, float] = {}
    intervals: list[ConfidenceInterval] = []
    for sample_entropy, support_size in zip(sample_entropies, support_sizes):
        if sample_entropy < 0:
            raise ParameterError(
                f"sample entropy must be >= 0, got {sample_entropy}"
            )
        bias = bias_cache.get(support_size)
        if bias is None:
            bias = bias_bound(support_size, sample_size, population_size)
            bias_cache[support_size] = bias
        intervals.append(
            # positional: (estimate, lower, upper, half_width, bias)
            ConfidenceInterval(
                sample_entropy,
                max(0.0, sample_entropy - lam),
                sample_entropy + lam + bias,
                lam,
                bias,
            )
        )
    return intervals


def joint_entropy_interval(
    sample_joint_entropy: float,
    support_first: int,
    support_second: int,
    sample_size: int,
    population_size: int,
    failure_probability: float,
) -> ConfidenceInterval:
    """Lemma 3 interval for the joint entropy of an attribute pair.

    As in Section 4 of the paper, the unknown pair support ``u_{t,α}`` is
    upper-bounded by ``u_t · u_α`` — pessimistic but never precomputed.
    """
    pair_support = support_first * support_second
    return entropy_interval(
        sample_joint_entropy,
        pair_support,
        sample_size,
        population_size,
        failure_probability,
    )


@dataclass(frozen=True)
class MutualInformationInterval:
    """Confidence interval for ``I(α_t, α)`` assembled from three entropy
    intervals (Section 4.1).

    ``I̲ = H̲(α_t) + H̲(α) - H̄(α_t, α)`` and
    ``Ī = H̄(α_t) + H̄(α) - H̲(α_t, α)``; both hold simultaneously with
    probability at least ``1 - 3p`` by union bound over the three
    constituent intervals.

    Attributes
    ----------
    estimate:
        The plug-in sample MI ``I_S``.
    lower, upper:
        The assembled bounds; ``lower`` is clipped at 0 (MI is
        non-negative).
    half_width:
        The shared single-entropy half-width ``λ`` (all three intervals use
        the same ``M``, so the same ``λ``). The total concentration slack
        inside the interval is ``6λ``.
    bias_target, bias_candidate, bias_joint:
        ``b(α_t)``, ``b(α)``, ``b(α_t, α)``.
    """

    estimate: float
    lower: float
    upper: float
    half_width: float
    bias_target: float
    bias_candidate: float
    bias_joint: float

    @property
    def bias_total(self) -> float:
        """``b'(α) = b(α_t) + b(α) + b(α_t, α)`` (Algorithm 3, line 6)."""
        return self.bias_target + self.bias_candidate + self.bias_joint

    @property
    def width(self) -> float:
        """``Ī - I̲`` before zero-clipping: ``6λ + b'(α)``."""
        return 6.0 * self.half_width + self.bias_total

    @property
    def midpoint(self) -> float:
        """``(I̲ + Ī) / 2`` from the unclipped lower bound."""
        return (self.upper - self.width + self.upper) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the (clipped) interval."""
        return self.lower <= value <= self.upper


def mutual_information_interval(
    target_interval: ConfidenceInterval,
    candidate_interval: ConfidenceInterval,
    joint_interval: ConfidenceInterval,
    sample_mutual_information: float,
) -> MutualInformationInterval:
    """Assemble the Section 4.1 MI interval from three entropy intervals.

    All three intervals must come from the same sample size (the shared
    ``λ`` is asserted to agree).
    """
    lam = target_interval.half_width
    if not (
        math.isclose(candidate_interval.half_width, lam, rel_tol=1e-12, abs_tol=1e-15)
        and math.isclose(joint_interval.half_width, lam, rel_tol=1e-12, abs_tol=1e-15)
    ):
        raise ParameterError(
            "the three entropy intervals of an MI bound must share one sample"
            " size (their half-widths differ)"
        )
    upper = (
        target_interval.estimate
        + candidate_interval.estimate
        - joint_interval.estimate
        + 3.0 * lam
        + target_interval.bias
        + candidate_interval.bias
    )
    width = 6.0 * lam + (
        target_interval.bias + candidate_interval.bias + joint_interval.bias
    )
    return MutualInformationInterval(
        estimate=sample_mutual_information,
        lower=max(0.0, upper - width),
        # MI is non-negative, so a (float-rounding) negative upper bound is
        # vacuous; clamp it like the lower bound so lower <= upper always.
        upper=max(0.0, upper),
        half_width=lam,
        bias_target=target_interval.bias,
        bias_candidate=candidate_interval.bias,
        bias_joint=joint_interval.bias,
    )


def mi_intervals(
    target_interval: ConfidenceInterval,
    sample_entropies: Sequence[float],
    support_sizes: Sequence[int],
    joint_entropies: Sequence[float],
    target_support: int,
    sample_size: int,
    population_size: int,
    failure_probability: float,
) -> list[MutualInformationInterval]:
    """Section 4.1 MI intervals for a batch of candidates at one sample size.

    ``sample_entropies[i]`` / ``support_sizes[i]`` describe candidate
    ``i``'s marginal, ``joint_entropies[i]`` its sample joint entropy
    with the target; ``target_interval`` is the (shared) Lemma 3 interval
    of the target attribute at the same ``(M, N, p)``. Candidate and
    joint entropy intervals are built through :func:`entropy_intervals`
    (pair supports bounded by ``u_t · u_α`` as in
    :func:`joint_entropy_interval`), so each element is bit-for-bit the
    interval the scalar path assembles.
    """
    if not len(sample_entropies) == len(support_sizes) == len(joint_entropies):
        raise ParameterError(
            f"got {len(sample_entropies)} sample entropies,"
            f" {len(support_sizes)} support sizes, and"
            f" {len(joint_entropies)} joint entropies"
        )
    candidate_ivs = entropy_intervals(
        sample_entropies,
        support_sizes,
        sample_size,
        population_size,
        failure_probability,
    )
    joint_ivs = entropy_intervals(
        joint_entropies,
        [target_support * support for support in support_sizes],
        sample_size,
        population_size,
        failure_probability,
    )
    intervals: list[MutualInformationInterval] = []
    for candidate_iv, joint_iv, joint_entropy in zip(
        candidate_ivs, joint_ivs, joint_entropies
    ):
        sample_mi = max(
            0.0,
            target_interval.estimate + candidate_iv.estimate - joint_entropy,
        )
        intervals.append(
            mutual_information_interval(
                target_interval, candidate_iv, joint_iv, sample_mi
            )
        )
    return intervals


def sample_size_for_width(
    target_width: float,
    support_size: int,
    population_size: int,
    failure_probability: float,
) -> int:
    """Lemma 4: a sample size at which ``2λ + b(α) ≤ target_width`` holds.

    ``M* = N (2 log2(N) √(2 ln(2/p) N / (N - 1/2)) + u_α)² / ((N-1) κ²)``

    Returns the ceiling of ``M*`` clamped to ``[1, N]``. Used for the
    expected-running-time analysis and by tests that verify the doubling
    loop stops within a factor 2 of this bound; the algorithms themselves
    never need it.
    """
    if target_width <= 0:
        raise ParameterError(f"target width must be > 0, got {target_width}")
    if support_size < 1:
        raise ParameterError(f"support size must be >= 1, got {support_size}")
    _check_probability(failure_probability)
    n = population_size
    if n < 1:
        raise ParameterError(f"population size must be >= 1, got {n}")
    if n == 1:
        return 1
    log_term = 2.0 * math.log2(n) * math.sqrt(
        # ln(2/p_f) again: the same Lemma 3 deviation term, inverted.
        2.0 * math.log(2.0 / failure_probability) * n / (n - 0.5)  # noqa: SWP001
    )
    numerator = n * (log_term + support_size) ** 2
    m_star = numerator / ((n - 1.0) * target_width**2)
    return max(1, min(n, math.ceil(m_star)))
