"""The concrete SWOPE per-module rules: ``SWP001``–``SWP012``, ``SWP017``,
and ``SWP018``.

Each rule encodes one repository invariant that the test suite can only
spot-check; ``docs/ANALYSIS.md`` documents the rationale and the
sanctioned suppressions. Rules are pure functions over a
:class:`~repro.analysis.checker.ModuleContext` and register themselves
via :func:`repro.analysis.rules.rule`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checker import ModuleContext
from repro.analysis.rules import RULES, Severity, Violation, rule

__all__ = ["RULES"]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def _is_numeric_literal(node: ast.expr) -> bool:
    value = node.value if isinstance(node, ast.Constant) else None
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _loop_body_nodes(loop: ast.For | ast.While) -> Iterator[ast.AST]:
    for stmt in [*loop.body, *loop.orelse]:
        yield from ast.walk(stmt)


# ----------------------------------------------------------------------
# SWP001 — entropy math in repro.core must be base-2
# ----------------------------------------------------------------------
@rule(
    "SWP001",
    "base2-logs",
    summary="repro.core entropy math must use base-2 logs (bits, Lemmas 1-3)",
    scope="repro.core",
)
def _check_base2_logs(context: ModuleContext) -> Iterator[Violation]:
    """Flag natural/decimal logs in :mod:`repro.core`.

    ``math.log`` with a single *numeric-literal* argument is permitted —
    that is the ``ln 2`` unit-conversion constant — as is an explicit
    base-2 second argument. Genuine natural logs inside a bound's
    formula (Lemma 3 uses ``ln``) carry a ``# noqa: SWP001`` with a
    justification.
    """
    if not context.in_package("repro.core"):
        return
    this = RULES["SWP001"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if chain is None or len(chain) != 2:
            continue
        root, name = chain
        if root in context.math_aliases and name in {"log", "log10", "log1p"}:
            if name == "log":
                if len(node.args) == 1 and not node.keywords:
                    if _is_numeric_literal(node.args[0]):
                        continue  # the ln-2 style unit constant
                elif (
                    len(node.args) == 2
                    and isinstance(node.args[1], ast.Constant)
                    and node.args[1].value in (2, 2.0)
                ):
                    continue  # explicit base 2
            yield context.violation(
                this,
                node,
                f"{root}.{name} in repro.core: entropy quantities are in bits"
                " — use math.log2, or '# noqa: SWP001' where the bound's"
                " formula genuinely takes a natural log",
            )
        elif root in context.numpy_aliases and name in {"log", "log10", "log1p"}:
            yield context.violation(
                this,
                node,
                f"{root}.{name} in repro.core: entropy quantities are in bits"
                " — use np.log2, or '# noqa: SWP001' where natural log is"
                " intended",
            )


# ----------------------------------------------------------------------
# SWP002 — no unseeded / global-state RNG
# ----------------------------------------------------------------------
#: ``np.random`` members that construct explicit generators (allowed).
_NP_RANDOM_CONSTRUCTORS = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


@rule(
    "SWP002",
    "seeded-rng",
    summary="all randomness must flow through an explicit numpy Generator",
    scope="everywhere except repro.testing",
)
def _check_seeded_rng(context: ModuleContext) -> Iterator[Violation]:
    """Flag global-state and unseedable RNG entry points.

    * legacy ``np.random.<fn>()`` calls (``rand``, ``seed``, ``choice``,
      ``RandomState``, …) mutate or read hidden global state;
    * ``np.random.default_rng()`` with no argument (or an explicit
      ``None``) is OS-entropy seeded and unreproducible;
    * any stdlib ``random.<fn>()`` call or ``from random import …``.

    :mod:`repro.testing` (fault injection) is exempt by scope.
    """
    if context.in_package("repro.testing"):
        return
    this = RULES["SWP002"]
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            yield context.violation(
                this,
                node,
                "stdlib random is global-state RNG: thread a seeded"
                " numpy.random.Generator instead",
            )
            continue
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if chain is None:
            continue
        if (
            len(chain) == 3
            and chain[0] in context.numpy_aliases
            and chain[1] == "random"
        ):
            member = chain[2]
            if member in _NP_RANDOM_CONSTRUCTORS:
                continue
            if member == "default_rng":
                unseeded = not node.args and not node.keywords
                explicit_none = (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded or explicit_none:
                    yield context.violation(
                        this,
                        node,
                        "default_rng() without a seed draws from OS entropy:"
                        " pass a seed or accept a Generator parameter",
                    )
                continue
            yield context.violation(
                this,
                node,
                f"np.random.{member} uses numpy's hidden global RNG state:"
                " thread a seeded numpy.random.Generator instead",
            )
        elif (
            len(chain) == 2
            and chain[0] in context.random_aliases
        ):
            yield context.violation(
                this,
                node,
                f"random.{chain[1]} is global-state RNG: thread a seeded"
                " numpy.random.Generator instead",
            )


# ----------------------------------------------------------------------
# SWP003 — adaptive loops must observe budget / cancellation
# ----------------------------------------------------------------------
#: Call names that count as a budget/cancellation checkpoint.
_BUDGET_CHECK_CALLS = {
    "interruption",
    "exhausted",
    "raise_if_cancelled",
    "check_interruption",
}


def _is_adaptive_loop(loop: ast.For | ast.While) -> bool:
    """A loop that grows the sample: iterates a schedule's ``.sizes``."""
    if isinstance(loop, ast.For):
        for node in ast.walk(loop.iter):
            if isinstance(node, ast.Attribute) and node.attr == "sizes":
                return True
        return False
    # ``while`` in the engine/baselines: adaptive iff it computes intervals.
    for node in _loop_body_nodes(loop):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "interval"
        ):
            return True
    return False


@rule(
    "SWP003",
    "budget-checked-loops",
    summary="adaptive sampling loops must check QueryBudget/CancellationToken",
    scope="repro.core.engine and repro.baselines",
)
def _check_budgeted_loops(context: ModuleContext) -> Iterator[Violation]:
    """Every schedule-driven loop needs a per-iteration interruption check.

    The PR-1 resilience contract: between iterations, an adaptive loop
    calls ``QueryBudget.exhausted`` / observes its ``CancellationToken``
    (in practice via a helper named ``interruption`` or
    ``check_interruption``), so production queries stay bounded and
    cancellable. Applies to :mod:`repro.core.engine` and every module
    under :mod:`repro.baselines`.
    """
    if not (
        context.module == "repro.core.engine"
        or context.in_package("repro.baselines")
    ):
        return
    this = RULES["SWP003"]
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        if not _is_adaptive_loop(node):
            continue
        checked = False
        for inner in _loop_body_nodes(node):
            if isinstance(inner, ast.Call):
                name: str | None = None
                if isinstance(inner.func, ast.Attribute):
                    name = inner.func.attr
                elif isinstance(inner.func, ast.Name):
                    name = inner.func.id
                if name in _BUDGET_CHECK_CALLS:
                    checked = True
                    break
        if not checked:
            yield context.violation(
                this,
                node,
                "adaptive loop never checks its QueryBudget/CancellationToken:"
                " call the interruption checkpoint once per iteration",
            )


# ----------------------------------------------------------------------
# SWP004 — no float == / != on entropy or interval values
# ----------------------------------------------------------------------
_SCORE_IDENTIFIERS = {"estimate", "lower", "upper", "midpoint", "width"}


def _is_score_expression(node: ast.expr) -> str | None:
    """The identifier that makes ``node`` an entropy/interval value."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    if (
        name in _SCORE_IDENTIFIERS and isinstance(node, ast.Attribute)
    ) or name.endswith("entropy") or "interval" in name or name in {
        "mutual_information",
        "midpoint",
    } or name.endswith("_mi"):
        return name
    return None


@rule(
    "SWP004",
    "no-float-score-equality",
    summary="entropy/interval values must not be compared with == or !=",
    scope="src/repro",
)
def _check_float_equality(context: ModuleContext) -> Iterator[Violation]:
    """Exact equality on computed scores is numerically meaningless.

    Entropy estimates, interval endpoints, and MI scores come out of
    floating-point log arithmetic; ``==``/``!=`` on them silently
    encodes "bit-identical rounding", which breaks under any refactor of
    the arithmetic. Compare with an ordering (``<=``) or a tolerance
    (``math.isclose``) instead.
    """
    if not context.in_package("repro"):
        return
    this = RULES["SWP004"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        for operand in [node.left, *node.comparators]:
            name = _is_score_expression(operand)
            if name is not None:
                yield context.violation(
                    this,
                    node,
                    f"float equality on score value {name!r}: use an ordering"
                    " comparison or math.isclose",
                )
                break


# ----------------------------------------------------------------------
# SWP005 — public APIs validate parameters, not assert
# ----------------------------------------------------------------------
def _parameter_names(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = function.args
    names = {
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if a.arg not in {"self", "cls"}
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    return names


def _is_narrowing_assert(node: ast.Assert) -> bool:
    """``assert x is not None`` — the sanctioned type-narrowing idiom."""
    test = node.test
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


@rule(
    "SWP005",
    "validate-not-assert",
    severity=Severity.WARNING,
    summary="public functions must validate parameters via validators, not assert",
    scope="src/repro",
)
def _check_parameter_asserts(context: ModuleContext) -> Iterator[Violation]:
    """Flag ``assert`` statements that guard a public function's parameters.

    ``assert`` disappears under ``python -O``, so it must never carry
    input validation for the public API — use
    :func:`repro.core.engine.validate_epsilon` and friends, or raise
    :class:`repro.exceptions.ParameterError`. Internal invariant asserts
    (on locals) and ``assert x is not None`` narrowing remain allowed.
    """
    if not context.in_package("repro"):
        return
    this = RULES["SWP005"]
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        parameters = _parameter_names(node)
        if not parameters:
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Assert) or _is_narrowing_assert(inner):
                continue
            referenced = {
                n.id
                for n in ast.walk(inner.test)
                if isinstance(n, ast.Name)
            }
            guarded = sorted(parameters & referenced)
            if guarded:
                yield context.violation(
                    this,
                    inner,
                    f"assert guards parameter(s) {', '.join(guarded)} of public"
                    f" function {node.name!r}; asserts vanish under -O — use a"
                    " validator or raise ParameterError",
                )


# ----------------------------------------------------------------------
# SWP006 — __all__ must match the module's public definitions
# ----------------------------------------------------------------------
def _module_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    names = [e.value for e in value.elts]  # type: ignore[union-attr]
                    return node, names
                return node, []
    return None


def _module_level_bindings(tree: ast.Module) -> tuple[set[str], set[str]]:
    """``(definitions, all_bindings)`` at module level.

    ``definitions`` are def/class statements (what SWP006 requires to be
    exported); ``all_bindings`` additionally include assignments and
    imports (what an ``__all__`` entry may legally refer to).
    """
    defs: set[str] = set()
    bindings: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs.add(node.name)
            bindings.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bindings.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bindings.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bindings.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (version guards) still bind names.
            for inner in ast.walk(node):
                if isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bindings.add(inner.name)
    return defs, bindings


@rule(
    "SWP006",
    "all-matches-defs",
    severity=Severity.WARNING,
    summary="__all__ must list exactly the module's public defs",
    scope="src/repro modules that declare __all__",
)
def _check_dunder_all(context: ModuleContext) -> Iterator[Violation]:
    """Keep ``__all__`` and the actual public surface in lock-step.

    Two directions: every ``__all__`` entry must be bound in the module,
    and every module-level public ``def``/``class`` must appear in
    ``__all__``. Module-level constants are not forced into ``__all__``
    (exporting them is a choice), and modules without ``__all__`` are
    out of scope.
    """
    if not context.in_package("repro"):
        return
    declared = _module_all(context.tree)
    if declared is None:
        return
    this = RULES["SWP006"]
    all_node, exported = declared
    defs, bindings = _module_level_bindings(context.tree)
    for name in exported:
        if name not in bindings:
            yield context.violation(
                this,
                all_node,
                f"__all__ exports {name!r} but the module never defines it",
            )
    for name in sorted(defs):
        if not name.startswith("_") and name not in exported:
            yield context.violation(
                this,
                all_node,
                f"public definition {name!r} is missing from __all__",
            )


# ----------------------------------------------------------------------
# SWP007 — raised exceptions derive from repro.exceptions
# ----------------------------------------------------------------------
_BUILTIN_EXCEPTIONS = {
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "BufferError",
    "EOFError",
    "Exception",
    "IOError",
    "IndexError",
    "KeyError",
    "LookupError",
    "MemoryError",
    "OSError",
    "OverflowError",
    "RuntimeError",
    "StopIteration",
    "SystemError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}


@rule(
    "SWP007",
    "repro-exceptions-only",
    summary="errors raised in src/repro must derive from repro.exceptions",
    scope="src/repro except repro.testing",
)
def _check_exception_hierarchy(context: ModuleContext) -> Iterator[Violation]:
    """Intentional errors must be catchable as :class:`ReproError`.

    Callers are promised one base class at the API boundary; a stray
    ``ValueError`` breaks that contract. ``NotImplementedError`` stays
    allowed (abstract seams), bare re-raises stay allowed, and
    :mod:`repro.testing` is exempt — its fault injectors deliberately
    raise infrastructure errors like ``OSError``.
    """
    if not context.in_package("repro") or context.in_package("repro.testing"):
        return
    this = RULES["SWP007"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            yield context.violation(
                this,
                node,
                f"raise {name}: intentional errors must derive from"
                " repro.exceptions.ReproError (multiple inheritance with the"
                " builtin keeps old callers working)",
            )


# ----------------------------------------------------------------------
# SWP008 — no time.time() in measured paths
# ----------------------------------------------------------------------
@rule(
    "SWP008",
    "monotonic-timing",
    summary="use time.perf_counter(), not time.time(), for measured intervals",
    scope="everywhere",
)
def _check_wall_clock_timing(context: ModuleContext) -> Iterator[Violation]:
    """``time.time()`` is not monotonic; measured durations must never use it.

    NTP slew or a clock step corrupts deadlines and reported
    ``wall_seconds``. True calendar timestamps (log lines, report
    headers) are the only sanctioned use and carry ``# noqa: SWP008``.
    """
    this = RULES["SWP008"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in context.time_aliases
            and chain[1] in {"time", "clock"}
        ):
            yield context.violation(
                this,
                node,
                f"time.{chain[1]}() is non-monotonic: use time.perf_counter()"
                " for measured intervals (calendar timestamps may be"
                " suppressed with a justification)",
            )


# ----------------------------------------------------------------------
# SWP009 — occurrence counting stays behind the CountingBackend seam
# ----------------------------------------------------------------------
@rule(
    "SWP009",
    "counting-behind-backend",
    summary="bincount/joint counting outside repro.data must go through the"
    " CountingBackend seam",
    scope="src/repro except repro.data",
)
def _check_counting_seam(context: ModuleContext) -> Iterator[Violation]:
    """Keep sample counting inside the pluggable backend layer.

    The batched execution core routes every occurrence count through
    :class:`repro.data.backends.CountingBackend` (marginals) and
    :class:`repro.data.joint.JointCounter` via the sampler's batch
    methods (joints), so backends stay interchangeable and the cost
    accounting stays exact. A ``np.bincount`` or a ``JointCounter``
    construction elsewhere in ``src/repro`` bypasses that seam —
    estimator-internal histogramming of *derived* values (e.g.
    conditional splits) may be suppressed with ``# noqa: SWP009`` and a
    justification.
    """
    if not context.in_package("repro") or context.in_package("repro.data"):
        return
    this = RULES["SWP009"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in context.numpy_aliases
            and chain[1] == "bincount"
        ):
            yield context.violation(
                this,
                node,
                "np.bincount outside repro.data: count samples through"
                " PrefixSampler / a CountingBackend so the seam stays"
                " pluggable, or '# noqa: SWP009' with a justification",
            )
        elif isinstance(node.func, ast.Name) and node.func.id == "JointCounter":
            yield context.violation(
                this,
                node,
                "JointCounter construction outside repro.data: use"
                " PrefixSampler.joint_counts_batch, or '# noqa: SWP009'"
                " with a justification",
            )


# ----------------------------------------------------------------------
# SWP010 — repro.core must not write to stdout/stderr directly
# ----------------------------------------------------------------------
@rule(
    "SWP010",
    "no-direct-output",
    summary="repro.core must not print or write to stdout/stderr; emit trace"
    " events instead",
    scope="repro.core",
)
def _check_direct_output(context: ModuleContext) -> Iterator[Violation]:
    """The engine narrates through :mod:`repro.obs`, never through stdout.

    A ``print()`` or ``sys.stdout``/``sys.stderr`` write inside
    :mod:`repro.core` corrupts machine-readable CLI output, breaks
    byte-stable golden traces, and cannot be disabled per query. Emit a
    :class:`repro.obs.events.TraceEvent` to the query's sink (or record a
    metric) instead; human-facing rendering belongs to :mod:`repro.cli`.
    """
    if not context.in_package("repro.core"):
        return
    this = RULES["SWP010"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield context.violation(
                this,
                node,
                "print() in repro.core: route diagnostics through a TraceSink"
                " (repro.obs) so callers control the output channel",
            )
            continue
        chain = _attribute_chain(node.func)
        if (
            chain is not None
            and len(chain) == 3
            and chain[0] in context.sys_aliases
            and chain[1] in {"stdout", "stderr"}
            and chain[2] in {"write", "writelines"}
        ):
            yield context.violation(
                this,
                node,
                f"sys.{chain[1]}.{chain[2]} in repro.core: route diagnostics"
                " through a TraceSink (repro.obs) so callers control the"
                " output channel",
            )


# ----------------------------------------------------------------------
# SWP011 — the adaptive loops are reached only through the planner
# ----------------------------------------------------------------------
_ADAPTIVE_LOOPS = {"adaptive_top_k", "adaptive_filter"}

#: Modules allowed to touch the loops directly: the engine defines them,
#: and the planner's ``run_query_spec`` is the single sanctioned dispatch
#: point (the four ``swope_*`` entry points are spec wrappers over it).
_ADAPTIVE_LOOP_MODULES = {"repro.core.engine", "repro.core.plan"}


@rule(
    "SWP011",
    "loops-behind-planner",
    summary="adaptive_top_k/adaptive_filter outside repro.core.plan must go"
    " through the planner",
    scope="src/repro except repro.core.engine and repro.core.plan",
)
def _check_planner_seam(context: ModuleContext) -> Iterator[Violation]:
    """Keep the adaptive loops behind the query-planner seam.

    :func:`repro.core.plan.run_query_spec` is the single place that
    builds providers, schedules, and failure budgets before entering
    :func:`~repro.core.engine.adaptive_top_k` /
    :func:`~repro.core.engine.adaptive_filter`; a direct call elsewhere
    in ``src/repro`` re-derives (and eventually diverges from) that
    wiring and bypasses plan-wide budgets, shared-scan accounting, and
    the plan trace events. Route new call sites through a
    :class:`~repro.core.plan.QuerySpec` — experiment harnesses that
    must drive a loop raw may suppress with ``# noqa: SWP011`` and a
    justification.
    """
    if (
        not context.in_package("repro")
        or context.module in _ADAPTIVE_LOOP_MODULES
    ):
        return
    this = RULES["SWP011"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name: str | None = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        else:
            chain = _attribute_chain(node.func)
            if chain is not None:
                name = chain[-1]
        if name in _ADAPTIVE_LOOPS:
            yield context.violation(
                this,
                node,
                f"{name}() outside repro.core.plan: build a QuerySpec and"
                " call run_query_spec (or a swope_* entry point) so budgets,"
                " shared-scan accounting, and plan events stay wired, or"
                " '# noqa: SWP011' with a justification",
            )


# ----------------------------------------------------------------------
# SWP012 — durable artifacts are written atomically
# ----------------------------------------------------------------------
_WRITE_MODES = {"w", "wb", "wt", "w+", "w+b", "wb+", "x", "xb", "xt", "x+"}

#: Packages allowed to open files for writing directly: the atomic
#: writer itself, and the chaos harness (whose *job* is producing the
#: torn files the atomic writer prevents).
_ATOMIC_EXEMPT_PACKAGES = ("repro.durability", "repro.testing")


def _call_write_mode(node: ast.Call) -> str | None:
    """The string-constant write mode of an open()-style call, if any."""
    mode_arg: ast.expr | None = None
    if len(node.args) >= 2:
        mode_arg = node.args[1]
    elif len(node.args) == 1 and isinstance(node.func, ast.Attribute):
        # path.open("w") — the path object is the receiver, mode is arg 0.
        mode_arg = node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_arg = keyword.value
    if (
        isinstance(mode_arg, ast.Constant)
        and isinstance(mode_arg.value, str)
        and mode_arg.value.replace("a", "w") in _WRITE_MODES
    ):
        return mode_arg.value
    return None


@rule(
    "SWP012",
    "atomic-durable-writes",
    summary="durable artifacts must go through repro.durability.atomic"
    " (write-temp-then-rename), not bare open/write_text",
    scope="src/repro except repro.durability and repro.testing",
)
def _check_atomic_writes(context: ModuleContext) -> Iterator[Violation]:
    """Every durable artifact survives a crash mid-write, or it is not durable.

    A bare ``open(path, "w")`` / ``Path.write_text`` truncates the
    destination before the new bytes land: a crash (or a full disk)
    between those two moments destroys the previous artifact *and* the
    new one. Checkpoints, traces, metrics dumps, bench JSON, and
    experiment results must route through
    :func:`repro.durability.atomic.atomic_write_text` /
    ``atomic_write_bytes`` / :class:`~repro.durability.atomic.AtomicTextFile`,
    which publish by ``os.replace`` only after a flushed, fsynced temp
    write. :mod:`repro.durability` (the implementation) and
    :mod:`repro.testing` (which deliberately manufactures torn files)
    are exempt; a genuinely non-durable scratch write may suppress with
    ``# noqa: SWP012`` and a justification.
    """
    if not context.in_package("repro") or any(
        context.in_package(package) for package in _ATOMIC_EXEMPT_PACKAGES
    ):
        return
    this = RULES["SWP012"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _call_write_mode(node)
            if mode is not None:
                yield context.violation(
                    this,
                    node,
                    f"open(..., {mode!r}) writes in place: a crash mid-write"
                    " tears the artifact — use repro.durability.atomic"
                    " (atomic_write_text/AtomicTextFile), or '# noqa:"
                    " SWP012' for scratch files",
                )
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method in {"write_text", "write_bytes"}:
            yield context.violation(
                this,
                node,
                f".{method}() writes in place: a crash mid-write tears the"
                " artifact — use repro.durability.atomic"
                " (atomic_write_text/atomic_write_bytes), or '# noqa:"
                " SWP012' for scratch files",
            )
        elif method == "open":
            mode = _call_write_mode(node)
            if mode is not None:
                yield context.violation(
                    this,
                    node,
                    f".open({mode!r}) writes in place: a crash mid-write"
                    " tears the artifact — use repro.durability.atomic, or"
                    " '# noqa: SWP012' for scratch files",
                )


# ----------------------------------------------------------------------
# SWP017 — cache access always names the dataset fingerprint
# ----------------------------------------------------------------------
#: The one package allowed to build partitions without going through
#: ``PlanCache.partition(fingerprint=..., shuffle=...)``: the cache itself.
_CACHE_PACKAGE = "repro.cache"

#: Keywords every partition lookup must spell at the call site.
_PARTITION_KEYS = {"fingerprint", "shuffle"}


def _looks_like_cache_partition_call(node: ast.Call) -> bool:
    """Whether a ``.partition(...)`` call is cache access, not ``str.partition``.

    ``str.partition(sep)`` takes exactly one positional argument and no
    keywords; a cache partition lookup is keyword-only. Anything with
    keywords, no arguments at all, or two-plus positionals is treated as
    cache access — a deliberate over-approximation, suppressible with
    ``# noqa: SWP017`` where a non-string ``partition`` API is in play.
    """
    if node.keywords:
        return True
    if not node.args:
        return True
    return len(node.args) >= 2


@rule(
    "SWP017",
    "cache-keys-name-fingerprints",
    summary="cache partitions are reached only via PlanCache.partition with"
    " explicit fingerprint=/shuffle= keys",
    scope="src/repro except repro.cache",
)
def _check_cache_fingerprints(context: ModuleContext) -> Iterator[Violation]:
    """No fingerprint-free cache paths outside ``repro.cache``.

    Cached counters and answers are only valid for one ``(dataset
    fingerprint, shuffle fingerprint)`` pair — state reached without
    naming both keys can silently serve another dataset's counts. Two
    shapes are flagged outside :mod:`repro.cache`:

    * constructing :class:`~repro.cache.CachePartition` directly — the
      partition must come from :meth:`~repro.cache.PlanCache.partition`,
      which requires the keys and wires on-disk loading;
    * calling ``.partition(...)`` without *both* ``fingerprint=`` and
      ``shuffle=`` keywords (``str.partition`` calls are recognised and
      skipped; other ``partition`` APIs may suppress with ``# noqa:
      SWP017`` and a justification).
    """
    if not context.in_package("repro") or context.in_package(_CACHE_PACKAGE):
        return
    this = RULES["SWP017"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            if node.func.id == "CachePartition":
                yield context.violation(
                    this,
                    node,
                    "CachePartition() outside repro.cache: get the partition"
                    " from PlanCache.partition(fingerprint=..., shuffle=...)"
                    " so the dataset identity is part of the key and on-disk"
                    " state is loaded, or '# noqa: SWP017' with a"
                    " justification",
                )
            continue
        chain = _attribute_chain(node.func)
        if chain is None or chain[-1] != "partition":
            continue
        if not _looks_like_cache_partition_call(node):
            continue
        missing = sorted(
            _PARTITION_KEYS
            - {kw.arg for kw in node.keywords if kw.arg is not None}
        )
        if missing:
            yield context.violation(
                this,
                node,
                f".partition() without {'/'.join(missing)}: cache state is"
                " keyed by (dataset fingerprint, shuffle fingerprint) — spell"
                " both keywords at the call site, or '# noqa: SWP017' for"
                " non-cache partition APIs",
            )


# ----------------------------------------------------------------------
# SWP018 — no whole-column materialisation outside the storage layer
# ----------------------------------------------------------------------
#: Packages allowed to take whole-column handles: the storage layer
#: itself (it implements the block API) and the exact baselines (which
#: are full scans by definition).
_COLUMN_EXEMPT_PACKAGES = ("repro.data", "repro.baselines")


@rule(
    "SWP018",
    "no-whole-column-reads",
    summary="whole-column reads (.column(...)) outside repro.data and"
    " repro.baselines must use .column_block(...)",
    scope="src/repro except repro.data and repro.baselines",
)
def _check_whole_column_reads(context: ModuleContext) -> Iterator[Violation]:
    """Keep out-of-core datasets out of RAM.

    :class:`~repro.data.column_store.ColumnSource.column` hands back the
    *whole* column — on a memory-mapped store that is a page-in of the
    entire attribute, defeating the block-read design that lets
    ``N ≫ RAM`` datasets stream. Algorithm and application code must ask
    for exactly the rows it needs via
    :meth:`~repro.data.column_store.ColumnSource.column_block`, whose
    selector matches the sampler's permutation-prefix access pattern.
    Deliberate full scans (the exact CMI substrate) and wrappers that
    *implement* the read path may suppress with ``# noqa: SWP018`` and a
    justification.
    """
    if not context.in_package("repro") or any(
        context.in_package(package) for package in _COLUMN_EXEMPT_PACKAGES
    ):
        return
    this = RULES["SWP018"]
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "column"
        ):
            continue
        yield context.violation(
            this,
            node,
            ".column() outside repro.data/repro.baselines materialises the"
            " whole column and defeats out-of-core streaming — read only the"
            " rows you need with .column_block(name, rows), or"
            " '# noqa: SWP018' with a justification for deliberate full"
            " scans",
        )
