"""SWOPE-aware static analysis: machine-checked repository invariants.

The correctness of this reproduction rests on invariants the test suite
can only spot-check — every entropy expression must be base-2 (Lemmas
1–3 are stated in bits), every sampling path must draw from a seeded
:class:`numpy.random.Generator`, every adaptive loop must honour the
``QueryBudget``/``CancellationToken`` contract, and every intentional
error must derive from the :mod:`repro.exceptions` hierarchy. This
package encodes those invariants as per-module AST lint rules
(``SWP001``–``SWP012``) plus whole-program analyses over the project
call graph (``SWP013``–``SWP016``) and runs them over the tree:

    python -m repro.analysis src/ tests/
    python -m repro.analysis --project src/ tests/

Structure
---------
* :mod:`repro.analysis.rules` — the rule framework: :class:`Violation`,
  :class:`Rule`, the ``SWP###`` registry, and severities.
* :mod:`repro.analysis.checks` — the concrete per-module SWOPE rules.
* :mod:`repro.analysis.graph` — project-wide import/call graph with
  sha256-cached per-module summaries.
* :mod:`repro.analysis.flow` — intra-procedural determinism-taint
  analysis feeding the graph summaries.
* :mod:`repro.analysis.project` — the :class:`ProjectContext` handed to
  whole-program rules, including the entry-point contract.
* :mod:`repro.analysis.checks_project` — the whole-program rules
  (determinism taint, budget reachability, thread-shared-state,
  exception contract).
* :mod:`repro.analysis.checker` — parses files, applies rules, and
  resolves ``# noqa: SWP###`` suppressions (including unused- and
  unknown-suppression detection, reported as ``SWP000``).
* :mod:`repro.analysis.baseline` — the ``--baseline`` ratchet file.
* :mod:`repro.analysis.reporting` — text, JSON, and SARIF reporters.
* :mod:`repro.analysis.cli` — the ``python -m repro.analysis`` entry
  point.

See ``docs/ANALYSIS.md`` for what each rule catches and why the
invariant matters.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.checker import (
    AnalysisReport,
    ModuleContext,
    analyze_paths,
    analyze_project,
    analyze_source,
)
from repro.analysis.rules import RULES, Rule, Severity, Violation, all_codes

# Importing the concrete checks registers them with the RULES registry.
from repro.analysis import checks as _checks  # noqa: F401
from repro.analysis import checks_project as _checks_project  # noqa: F401
from repro.analysis.graph import ModuleSummary, ProjectGraph, extract_module
from repro.analysis.project import ProjectContext

__all__ = [
    "AnalysisReport",
    "Baseline",
    "ModuleContext",
    "ModuleSummary",
    "ProjectContext",
    "ProjectGraph",
    "RULES",
    "Rule",
    "Severity",
    "Violation",
    "all_codes",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "extract_module",
]
