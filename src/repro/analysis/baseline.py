"""The ``--baseline`` ratchet file: tolerate old debt, block new debt.

A baseline records the fingerprints of every violation present when it
was written. Later runs with ``--baseline`` subtract those fingerprints,
so the analysis job can gate CI on *new* violations immediately while
the recorded ones are paid down over time — the count can only ratchet
down, never up, because ``--update-baseline`` refuses to grow the file.

Fingerprints pair the file path and rule code with the *stripped source
line text* rather than the line number, so edits elsewhere in a file do
not resurface baselined findings, while touching the offending statement
itself does (see :attr:`repro.analysis.rules.Violation.fingerprint`).
Duplicate fingerprints (the same statement text violating the same rule
twice in one file) are tracked as a multiset.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.rules import Violation
from repro.durability.atomic import atomic_write_text
from repro.exceptions import AnalysisError

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """A multiset of tolerated violation fingerprints."""

    fingerprints: Counter[str] = field(default_factory=Counter)

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        return cls(Counter(v.fingerprint for v in violations))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; malformed content raises ``AnalysisError``."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
            or not isinstance(payload.get("fingerprints"), dict)
        ):
            raise AnalysisError(
                f"baseline {path} is malformed: expected"
                f' {{"version": {_FORMAT_VERSION}, "fingerprints": {{...}}}}'
            )
        fingerprints: Counter[str] = Counter()
        for fingerprint, count in payload["fingerprints"].items():
            if not isinstance(fingerprint, str) or not isinstance(count, int) or count < 1:
                raise AnalysisError(
                    f"baseline {path} is malformed: fingerprint counts must be"
                    " positive integers"
                )
            fingerprints[fingerprint] = count
        return cls(fingerprints)

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }
        atomic_write_text(
            path, json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def __len__(self) -> int:
        return sum(self.fingerprints.values())

    def filter(
        self, violations: Iterable[Violation]
    ) -> tuple[list[Violation], list[Violation]]:
        """Split ``violations`` into ``(new, baselined)``.

        Each baseline fingerprint absorbs at most its recorded count, so
        a statement duplicated *after* the baseline was written is still
        reported as new.
        """
        remaining = Counter(self.fingerprints)
        new: list[Violation] = []
        tolerated: list[Violation] = []
        for violation in violations:
            if remaining[violation.fingerprint] > 0:
                remaining[violation.fingerprint] -= 1
                tolerated.append(violation)
            else:
                new.append(violation)
        return new, tolerated
