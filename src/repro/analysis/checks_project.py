"""Whole-program rules SWP013–SWP016 (require ``--project``).

These checks consume the linked :class:`~repro.analysis.graph.ProjectGraph`
via a :class:`~repro.analysis.project.ProjectContext` and enforce the
cross-module invariants the per-module rules cannot see:

* **SWP013** — determinism taint: wall-clock/entropy/ordering
  nondeterminism must not flow into trace events, checkpoint envelopes,
  or result fingerprints (the substrate of golden-trace bit-identity).
* **SWP014** — budget reachability: every adaptive loop reachable from
  a public entry point must observe its budget (cross-module SWP003).
* **SWP015** — thread-shared-state: no unlocked writes to shared
  mutable state in code reachable from threaded worker functions.
* **SWP016** — exception contract: the transitive raise-set of every
  public entry point stays inside the ``repro.exceptions`` taxonomy.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.checks import _BUILTIN_EXCEPTIONS
from repro.analysis.flow import TaintLabel
from repro.analysis.graph import FunctionInfo, ProjectGraph, Resolved
from repro.analysis.project import ProjectContext
from repro.analysis.rules import RULES, Violation, project_rule

__all__: list[str] = []


# ----------------------------------------------------------------------
# SWP013 — determinism taint must not reach events/checkpoints/fingerprints
# ----------------------------------------------------------------------
#: Function sinks: hashing a result for golden-trace comparison.
_FINGERPRINT_SINKS = {"result_fingerprint", "plan_fingerprint"}

#: Modules whose ``*Event`` classes are trace-payload sinks.
_EVENT_MODULE = "repro.obs.events"

#: The durable checkpoint envelope.
_CHECKPOINT_MODULE = "repro.durability.checkpoint"
_CHECKPOINT_CLASS = "PlanCheckpoint"


def _sink_description(
    graph: ProjectGraph, chain: tuple[str, ...], info: FunctionInfo
) -> str | None:
    """Non-``None`` when the called chain is a determinism sink."""
    resolved = graph.resolve_chain(chain, info)
    name = chain[-1]
    if resolved is not None:
        if resolved.kind == "class":
            if resolved.module == _EVENT_MODULE and resolved.qualname.endswith(
                "Event"
            ):
                return f"trace event {resolved.qualname} payload"
            if (
                resolved.module == _CHECKPOINT_MODULE
                and resolved.qualname == _CHECKPOINT_CLASS
            ):
                return "checkpoint envelope PlanCheckpoint"
            return None
        if resolved.kind == "function" and resolved.qualname in _FINGERPRINT_SINKS:
            return f"{resolved.qualname}() input"
        return None
    # Name-based fallback for chains the resolver cannot follow (e.g. a
    # sink class held in a local): better a reviewable finding than a
    # silent miss.
    if name.endswith("Event") and name[:1].isupper():
        return f"trace event {name} payload"
    if name == _CHECKPOINT_CLASS:
        return "checkpoint envelope PlanCheckpoint"
    if name in _FINGERPRINT_SINKS:
        return f"{name}() input"
    return None


def _interprocedural_return_taint(
    graph: ProjectGraph,
) -> dict[str, set[TaintLabel]]:
    """Fixpoint of per-function return taint across resolved call chains."""
    taint: dict[str, set[TaintLabel]] = {
        key: set(info.flow.return_labels)
        for key, info in graph.functions.items()
    }
    resolved_via: dict[str, list[str]] = {}
    for key, info in graph.functions.items():
        callees: list[str] = []
        for chain in info.flow.return_via:
            resolved = graph.resolve_callable(chain, info)
            if resolved is not None and resolved.kind == "function":
                callees.append(resolved.key)
        resolved_via[key] = callees
    changed = True
    while changed:
        changed = False
        for key, callees in resolved_via.items():
            for callee in callees:
                extra = taint.get(callee, set()) - taint[key]
                if extra:
                    taint[key] |= extra
                    changed = True
    return taint


@project_rule(
    "SWP013",
    "determinism-taint",
    summary="nondeterministic values must not reach trace events, checkpoints,"
    " or result fingerprints",
)
def _check_determinism_taint(ctx: ProjectContext) -> Iterator[Violation]:
    """Taint from wall clocks / OS entropy / iteration order must not sink.

    Sources are detected intra-procedurally (:mod:`repro.analysis.flow`)
    and propagated across function returns by a whole-program fixpoint;
    any call whose tainted arguments reach an event constructor, the
    ``PlanCheckpoint`` envelope, or a fingerprint function fires. The
    ``RunStats`` timing fields are *not* sinks — wall time belongs in
    the metrics layer, not the determinism-critical stream.
    """
    this = RULES["SWP013"]
    graph = ctx.graph
    return_taint = _interprocedural_return_taint(graph)
    for info in ctx.iter_functions():
        for call in info.flow.tainted_calls:
            sink = _sink_description(graph, call.chain, info)
            if sink is None:
                continue
            labels: set[TaintLabel] = set(call.labels)
            for via in call.via:
                resolved = graph.resolve_callable(via, info)
                if resolved is not None and resolved.kind == "function":
                    labels |= return_taint.get(resolved.key, set())
            if not labels:
                continue
            sources = ", ".join(
                sorted({label.source for label in labels})
            )
            yield ctx.violation(
                this,
                info,
                call.lineno,
                f"nondeterministic value ({sources}) flows into {sink};"
                " same-seed runs would diverge — derive the field"
                " deterministically or route it to the metrics layer",
                column=call.col,
            )


# ----------------------------------------------------------------------
# SWP014 — adaptive loops reachable from entry points observe the budget
# ----------------------------------------------------------------------
@project_rule(
    "SWP014",
    "budget-reachability",
    summary="adaptive loops reachable from public entry points must check"
    " the budget (cross-module SWP003)",
)
def _check_budget_reachability(ctx: ProjectContext) -> Iterator[Violation]:
    """Cross-module generalisation of SWP003.

    SWP003 scopes to ``repro.core.engine`` + ``repro.baselines`` by
    module name; this rule instead asks *which code actually runs under
    a user query* — every function transitively reachable from a public
    entry point — and requires each data-sized loop there to call an
    interruption checkpoint. New query surfaces are covered the moment
    they become reachable, without editing any scope list.
    """
    this = RULES["SWP014"]
    origin = ctx.graph.reachable(ctx.entry_points())
    for key in sorted(origin):
        info = ctx.graph.functions[key]
        root = ctx.graph.functions[origin[key]]
        for loop in info.loops:
            if loop.adaptive and not loop.checked:
                yield ctx.violation(
                    this,
                    info,
                    loop.lineno,
                    f"adaptive {loop.kind}-loop in {info.qualname} is"
                    f" reachable from entry point {root.qualname} but never"
                    " checks its QueryBudget/CancellationToken",
                )


# ----------------------------------------------------------------------
# SWP015 — no unlocked shared-state writes under threaded workers
# ----------------------------------------------------------------------
@project_rule(
    "SWP015",
    "thread-shared-state",
    summary="code reachable from threaded workers must not write shared"
    " mutable state without a lock",
)
def _check_thread_shared_state(ctx: ProjectContext) -> Iterator[Violation]:
    """Writes to shared state in worker-reachable code need a lock.

    Worker roots are the callables handed to ``pool.submit(fn, ...)``,
    ``pool.map(fn, ...)``, or ``Thread(target=fn)``. Within the code
    reachable from any worker root, a rebinding through ``global`` /
    ``nonlocal`` or an in-place mutation of a module-level container is
    a cross-thread data race unless it sits inside a ``with <lock>:``
    block. This prepares the tree for the genuinely parallel counting
    backend on the roadmap.
    """
    this = RULES["SWP015"]
    graph = ctx.graph
    workers: list[str] = []
    for info in ctx.iter_functions():
        for site in info.dispatches:
            resolved = graph.resolve_callable(site.chain, info)
            if resolved is not None and resolved.kind == "function":
                if resolved.key not in workers:
                    workers.append(resolved.key)
    origin = graph.reachable(workers)
    for key in sorted(origin):
        info = graph.functions[key]
        root = graph.functions[origin[key]]
        for write in info.shared_writes:
            if write.locked:
                continue
            yield ctx.violation(
                this,
                info,
                write.lineno,
                f"{write.kind} write to shared state {write.name!r} in"
                f" {info.qualname}, reachable from threaded worker"
                f" {root.qualname}, is not under a lock",
            )


# ----------------------------------------------------------------------
# SWP016 — transitive raise-set stays inside the repro.exceptions taxonomy
# ----------------------------------------------------------------------
#: Control-flow / abstract-seam builtins an entry point may legitimately
#: raise without wrapping (mirrors the SWP007 exemptions).
_ALLOWED_BUILTINS = {
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "KeyboardInterrupt",
    "SystemExit",
    "GeneratorExit",
}

_EXCEPTIONS_MODULE = "repro.exceptions"


def _in_taxonomy(
    graph: ProjectGraph, resolved: Resolved, _depth: int = 0
) -> bool:
    """Is the class defined in — or derived from — ``repro.exceptions``?"""
    if resolved.module == _EXCEPTIONS_MODULE:
        return True
    if _depth > 10:
        return False
    summary = graph.modules.get(resolved.module)
    if summary is None:
        return False
    cls = summary.classes.get(resolved.qualname)
    if cls is None:
        return False
    for base in cls.bases:
        base_resolved = graph._resolve_in_module(summary, base)
        if (
            base_resolved is not None
            and base_resolved.kind == "class"
            and _in_taxonomy(graph, base_resolved, _depth + 1)
        ):
            return True
    return False


@project_rule(
    "SWP016",
    "exception-contract",
    summary="entry points may only (transitively) raise the documented"
    " repro.exceptions taxonomy",
)
def _check_exception_contract(ctx: ProjectContext) -> Iterator[Violation]:
    """The API's catchability promise, enforced transitively.

    Callers are told ``except ReproError`` catches every intentional
    failure. For each public entry point we take the BFS closure over
    the call graph and check every ``raise`` site in it: the exception
    class must resolve into ``repro.exceptions`` (directly or through
    its base chain). Raising a builtin is a contract break even in a
    module SWP007 does not scope to, *if* that code runs under an entry
    point. Unresolvable raise expressions (dynamic classes, re-raised
    locals) are skipped — a documented under-approximation.
    """
    this = RULES["SWP016"]
    graph = ctx.graph
    origin = graph.reachable(ctx.entry_points())
    for key in sorted(origin):
        info = graph.functions[key]
        root = graph.functions[origin[key]]
        for site in info.raises:
            name = site.chain[-1]
            if name in _ALLOWED_BUILTINS:
                continue
            resolved = graph.resolve_chain(site.chain, info)
            if resolved is not None and resolved.kind == "class":
                if _in_taxonomy(graph, resolved):
                    continue
                yield ctx.violation(
                    this,
                    info,
                    site.lineno,
                    f"raise {name} in {info.qualname} (reachable from entry"
                    f" point {root.qualname}) is outside the repro.exceptions"
                    " taxonomy; derive it from ReproError",
                )
            elif resolved is None and name in _BUILTIN_EXCEPTIONS:
                yield ctx.violation(
                    this,
                    info,
                    site.lineno,
                    f"raise {name} in {info.qualname} (reachable from entry"
                    f" point {root.qualname}) breaks the 'except ReproError'"
                    " contract; wrap it in a repro.exceptions class",
                )
