"""Parse modules, apply rules, resolve ``# noqa: SWP###`` suppressions.

The checker is deliberately self-contained (stdlib ``ast`` + ``re``
only) so the analysis pass can run in any environment that can import
the package — no third-party linter framework involved.

Suppression contract
--------------------
A violation reported at line *L* is suppressed when line *L* carries a
``# noqa: SWP###`` comment naming its rule code (several codes may be
comma-separated: ``# noqa: SWP001, SWP004``). Bare ``# noqa`` without
codes is **ignored** — suppressions must say what they suppress, so a
reader can audit them. Every suppression that names a selected rule
which did *not* fire on its line is itself reported as ``SWP000``
(unused suppression, warning severity): stale suppressions hide future
regressions and must be deleted.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.exceptions import AnalysisError

from repro.analysis.rules import (
    RULES,
    Rule,
    Severity,
    UNUSED_SUPPRESSION,
    Violation,
    iter_rules,
)

__all__ = [
    "AnalysisReport",
    "ModuleContext",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "build_context",
    "iter_python_files",
]

_NOQA_PATTERN = re.compile(
    r"#\s*noqa:\s*(?P<codes>SWP\d{3}(?:\s*,\s*SWP\d{3})*)", re.IGNORECASE
)

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build"}


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module.

    ``module`` is the best-effort dotted module name derived from the
    path (``src/repro/core/engine.py`` → ``repro.core.engine``); rules
    use it for scoping decisions, so files outside a recognisable
    package root simply fall outside package-scoped rules.
    """

    path: str
    module: str
    text: str
    lines: list[str]
    tree: ast.Module
    #: Local names bound to the ``numpy`` module (``numpy``, ``np``, …).
    numpy_aliases: set[str] = field(default_factory=set)
    #: Local names bound to the stdlib ``random`` module.
    random_aliases: set[str] = field(default_factory=set)
    #: Local names bound to the stdlib ``math`` module.
    math_aliases: set[str] = field(default_factory=set)
    #: Local names bound to the stdlib ``time`` module.
    time_aliases: set[str] = field(default_factory=set)
    #: Local names bound to the stdlib ``sys`` module.
    sys_aliases: set[str] = field(default_factory=set)

    def in_package(self, prefix: str) -> bool:
        """True when the module lives in ``prefix`` (dotted, inclusive)."""
        return self.module == prefix or self.module.startswith(prefix + ".")

    def source_line(self, lineno: int) -> str:
        """The stripped source text of a 1-based line (``""`` off-range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(
        self,
        rule: Rule,
        node: ast.AST | int,
        message: str,
    ) -> Violation:
        """Build a violation for ``node`` (an AST node or a line number)."""
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return Violation(
            rule=rule.code,
            path=self.path,
            line=line,
            column=column,
            message=message,
            severity=rule.severity,
            snippet=self.source_line(line),
        )


def _module_name(path: Path) -> str:
    """Best-effort dotted module name for scoping decisions.

    Prefers the part of the path after a ``src`` directory; otherwise
    falls back to the part starting at a ``repro`` or ``tests``
    component. Unrecognisable layouts yield the bare stem, which places
    the file outside every package-scoped rule.
    """
    parts = list(path.parts)
    parts[-1] = path.stem
    for anchor in ("src",):
        if anchor in parts[:-1]:
            tail = parts[parts.index(anchor) + 1 :]
            if tail:
                return ".".join(p for p in tail if p != "__init__")
    for root in ("repro", "tests"):
        if root in parts:
            tail = parts[parts.index(root) :]
            return ".".join(p for p in tail if p != "__init__")
    return path.stem


def _collect_import_aliases(context: ModuleContext) -> None:
    """Record which local names refer to numpy / random / math / time / sys."""
    targets = {
        "numpy": context.numpy_aliases,
        "random": context.random_aliases,
        "math": context.math_aliases,
        "time": context.time_aliases,
        "sys": context.sys_aliases,
    }
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bucket = targets.get(alias.name)
                if bucket is not None:
                    bucket.add(alias.asname or alias.name)


def build_context(path: str, text: str) -> ModuleContext:
    """Parse ``text`` into a :class:`ModuleContext` (raises ``SyntaxError``)."""
    tree = ast.parse(text, filename=path)
    context = ModuleContext(
        path=path,
        module=_module_name(Path(path)),
        text=text,
        lines=text.splitlines(),
        tree=tree,
    )
    _collect_import_aliases(context)
    return context


def _suppressions(text: str) -> dict[int, set[str]]:
    """``{line_number: {codes}}`` for every ``# noqa: SWP###`` comment.

    Tokenizes rather than greps, so ``# noqa`` *text inside a string or
    docstring* (this project documents its own suppression syntax) never
    counts as a real suppression.
    """
    found: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return found  # the AST parse already reported the file as broken
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_PATTERN.search(token.string)
        if match is not None:
            codes = {c.strip().upper() for c in match.group("codes").split(",")}
            found.setdefault(token.start[0], set()).update(codes)
    return found


@dataclass
class AnalysisReport:
    """Outcome of one analysis run over one or more files."""

    violations: list[Violation] = field(default_factory=list)
    #: Violations silenced by a ``# noqa`` comment (kept for reporting).
    suppressed: list[Violation] = field(default_factory=list)
    checked_files: int = 0
    #: Files that could not be parsed: ``(path, message)``.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    def extend(self, other: "AnalysisReport") -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)
        self.checked_files += other.checked_files
        self.parse_errors.extend(other.parse_errors)

    def counts(self) -> dict[str, int]:
        """``{rule_code: violation_count}`` over the unsuppressed findings."""
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return dict(sorted(out.items()))

    def has_errors(self) -> bool:
        return bool(self.parse_errors) or any(
            v.severity is Severity.ERROR for v in self.violations
        )

    def has_warnings(self) -> bool:
        return any(v.severity is Severity.WARNING for v in self.violations)


_UNUSED_RULE = Rule(
    code=UNUSED_SUPPRESSION,
    name="unused-suppression",
    severity=Severity.WARNING,
    summary="a # noqa: SWP### comment suppresses nothing on its line",
    check=lambda context: (),
    scope="anywhere",
)


def _resolve_suppressions(
    context: ModuleContext,
    raw: list[Violation],
    *,
    ran: set[str],
    report_unused: bool,
    report: AnalysisReport,
) -> None:
    """Route raw findings through ``# noqa`` comments into ``report``.

    Shared by the per-module and whole-program paths so both get the
    same contract: a suppression silences only its own line and rule;
    a suppression naming a selected rule that did not fire is stale
    (``SWP000``); a suppression naming a rule code that does not exist
    at all — a typo, or a rule that was deleted — is also ``SWP000``,
    judgeable regardless of ``--select`` because no narrowing can make
    a nonexistent rule fire.
    """
    suppressions = _suppressions(context.text)
    fired_by_line: dict[int, set[str]] = {}
    for violation in raw:
        codes = suppressions.get(violation.line, set())
        fired_by_line.setdefault(violation.line, set()).add(violation.rule)
        if violation.rule in codes:
            report.suppressed.append(violation)
        else:
            report.violations.append(violation)
    if not report_unused:
        return
    for line, codes in sorted(suppressions.items()):
        for code in sorted(codes):
            if code != UNUSED_SUPPRESSION and code not in RULES:
                report.violations.append(
                    context.violation(
                        _UNUSED_RULE,
                        line,
                        f"suppression names unknown rule {code}: no such"
                        " rule is registered; delete or fix the # noqa",
                    )
                )
                continue
            if code not in ran:
                continue  # rule not selected: cannot judge staleness
            if code not in fired_by_line.get(line, set()):
                report.violations.append(
                    context.violation(
                        _UNUSED_RULE,
                        line,
                        f"unused suppression: {code} never fires on this"
                        " line; delete the # noqa",
                    )
                )


def analyze_source(
    path: str,
    text: str,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    report_unused: bool = True,
) -> AnalysisReport:
    """Run the (narrowed) per-module rule set over one in-memory module.

    Unused-suppression detection only considers codes belonging to rules
    that actually ran: narrowing with ``--select`` must not mark the
    other rules' suppressions as stale. Project rules never run here —
    they need the whole-program graph (:func:`analyze_project`) — so
    their suppressions are likewise never judged stale by this path.
    """
    report = AnalysisReport(checked_files=1)
    try:
        context = build_context(path, text)
    except SyntaxError as exc:
        report.parse_errors.append((path, f"syntax error: {exc.msg} (line {exc.lineno})"))
        return report
    rules = iter_rules(select, ignore)
    raw: list[Violation] = []
    for active_rule in rules:
        raw.extend(active_rule.run(context))
    ran = {r.code for r in rules if not r.project}
    _resolve_suppressions(
        context, raw, ran=ran, report_unused=report_unused, report=report
    )
    return report


def analyze_file(
    path: Path,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    report_unused: bool = True,
    display_root: Path | None = None,
) -> AnalysisReport:
    """Analyse one file on disk; paths in findings are root-relative."""
    display = path
    if display_root is not None:
        try:
            display = path.resolve().relative_to(display_root.resolve())
        except ValueError:
            display = path
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        report = AnalysisReport(checked_files=1)
        report.parse_errors.append((display.as_posix(), f"unreadable: {exc}"))
        return report
    return analyze_source(
        display.as_posix(),
        text,
        select=select,
        ignore=ignore,
        report_unused=report_unused,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def analyze_paths(
    paths: Sequence[Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    report_unused: bool = True,
    display_root: Path | None = None,
) -> AnalysisReport:
    """Analyse every ``.py`` file under ``paths`` into one report."""
    # Touch the registry so an empty-registry misconfiguration fails loudly
    # rather than silently passing every tree.
    if not RULES:  # pragma: no cover - guarded by package __init__ imports
        raise AnalysisError("no analysis rules registered; import repro.analysis")
    combined = AnalysisReport()
    for file_path in iter_python_files(paths):
        combined.extend(
            analyze_file(
                file_path,
                select=select,
                ignore=ignore,
                report_unused=report_unused,
                display_root=display_root,
            )
        )
    combined.violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return combined


def _display_path(path: Path, display_root: Path | None) -> str:
    display = path
    if display_root is not None:
        try:
            display = path.resolve().relative_to(display_root.resolve())
        except ValueError:
            display = path
    return display.as_posix()


def analyze_project(
    paths: Sequence[Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    report_unused: bool = True,
    display_root: Path | None = None,
    cache_path: Path | None = None,
    module_files: Iterable[str] | None = None,
) -> AnalysisReport:
    """Whole-program analysis: per-module rules + graph-based rules.

    Parses every ``.py`` file under ``paths`` once, runs the per-module
    rules on each, links every parsed module inside the ``repro``
    package into a :class:`~repro.analysis.graph.ProjectGraph` (with an
    optional sha256-keyed summary cache at ``cache_path``), and runs the
    registered ``@project_rule`` checks over the resulting
    :class:`~repro.analysis.project.ProjectContext`.

    ``module_files`` (display-relative path strings) narrows which files
    the *per-module* rules run on — the ``--changed-only`` fast path.
    The graph and the project rules always see the full tree: a change
    in one module can create a cross-module violation positioned in
    another, so partial graphs would under-report. Suppression
    staleness is judged per file against the codes that actually ran
    there; unknown-rule suppressions are judged everywhere.
    """
    # Imported lazily: graph.py needs checks.py which needs this module.
    from repro.analysis.graph import ProjectGraph, extract_module, load_cache, save_cache
    from repro.analysis.project import ProjectContext

    if not RULES:  # pragma: no cover - guarded by package __init__ imports
        raise AnalysisError("no analysis rules registered; import repro.analysis")
    rules = iter_rules(select, ignore)
    module_rules = [r for r in rules if not r.project]
    project_rules = [r for r in rules if r.project]
    report = AnalysisReport()

    contexts: list[ModuleContext] = []
    for file_path in iter_python_files(paths):
        display = _display_path(file_path, display_root)
        report.checked_files += 1
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append((display, f"unreadable: {exc}"))
            continue
        try:
            contexts.append(build_context(display, text))
        except SyntaxError as exc:
            report.parse_errors.append(
                (display, f"syntax error: {exc.msg} (line {exc.lineno})")
            )
            continue

    narrowed = set(module_files) if module_files is not None else None
    raw_by_path: dict[str, list[Violation]] = {}
    module_analyzed: set[str] = set()
    for context in contexts:
        if narrowed is not None and context.path not in narrowed:
            continue
        module_analyzed.add(context.path)
        raw = raw_by_path.setdefault(context.path, [])
        for active_rule in module_rules:
            raw.extend(active_rule.run(context))

    graph_contexts = [c for c in contexts if c.in_package("repro")]
    cached = load_cache(cache_path) if cache_path is not None else {}
    summaries = []
    for context in graph_contexts:
        sha = hashlib.sha256(context.text.encode("utf-8")).hexdigest()
        hit = cached.get(sha)
        if hit is not None and hit.module == context.module:
            summaries.append(hit)
        else:
            summaries.append(extract_module(context))
    if cache_path is not None:
        save_cache(cache_path, summaries)
    graph = ProjectGraph(summaries)
    project_context = ProjectContext(
        graph=graph, contexts={c.module: c for c in graph_contexts}
    )
    for active_rule in project_rules:
        for violation in active_rule.run_project(project_context):
            raw_by_path.setdefault(violation.path, []).append(violation)

    graph_paths = {c.path for c in graph_contexts}
    module_codes = {r.code for r in module_rules}
    project_codes = {r.code for r in project_rules}
    for context in contexts:
        ran: set[str] = set()
        if context.path in module_analyzed:
            ran |= module_codes
        if context.path in graph_paths:
            ran |= project_codes
        _resolve_suppressions(
            context,
            raw_by_path.get(context.path, []),
            ran=ran,
            report_unused=report_unused,
            report=report,
        )
    report.violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return report
