"""Intra-procedural determinism-taint analysis (the SWP013 substrate).

Same-seed bit-identity of answers, golden traces, and checkpoints is the
invariant that makes the paper's Definition 5/6 stopping rules testable
at all: a trace event or checkpoint field that depends on the wall
clock, OS entropy, or Python's per-process ``hash`` randomisation turns
every golden-trace diff into noise. This module computes, for one
function at a time, *which local values are tainted by such a source*
and records every call whose arguments carry taint; the whole-program
rule (``SWP013`` in :mod:`repro.analysis.checks_project`) then resolves
those calls against the project call graph to decide which of them are
determinism-sensitive sinks.

Taint model
-----------
Two taint *kinds*:

* ``value`` — the bytes of the value itself are nondeterministic:
  wall-clock reads (``time.time``/``perf_counter``/``monotonic`` …),
  ``os.urandom``/``uuid.uuid4``/``secrets``, unseeded
  ``np.random.default_rng()``, stdlib ``random``, ``id()``, and
  ``hash()`` of a non-``str``-literal argument (``PYTHONHASHSEED``).
* ``order`` — the value's *iteration order* is nondeterministic: ``set``
  / ``frozenset`` displays and constructors. ``sorted``/``min``/``max``
  /``sum``/``len`` cleanse order taint (they are order-insensitive);
  ``list``/``tuple`` conversions and comprehensions preserve it.

Propagation is flow-insensitive within branches (all branch bodies are
merged) and runs two passes over the body so loop-carried taint
stabilises. Deliberate approximations, documented in
``docs/ANALYSIS.md``:

* comparisons yield untainted booleans (a deadline *check* is fine; the
  deadline *value* is not), so budget checkpoints do not smear taint;
* calls to lowercase-named functions drop argument taint — the callee's
  *own* return taint is tracked interprocedurally via ``via`` call
  chains instead; capitalised (constructor-shaped) calls wrap their
  arguments and keep both taint and ``via`` dependencies;
* attribute stores taint the base object (``self.t0 = time.time()``
  taints ``self``), but method calls on tainted locals return clean
  values unless the call chain resolves in the project graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "FunctionFlow",
    "TaintLabel",
    "TaintedCall",
    "analyze_function",
]

#: ``time`` module members whose return value is a wall-clock read.
_TIME_SOURCES = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock",
}

#: Builtins that preserve the values they are given (taint passes through).
_PASS_THROUGH = {
    "list",
    "tuple",
    "dict",
    "iter",
    "reversed",
    "enumerate",
    "zip",
    "str",
    "repr",
    "format",
    "int",
    "float",
    "round",
    "abs",
    "next",
    "copy",
    "deepcopy",
}

#: Builtins whose result does not depend on argument *order* (they cleanse
#: ``order`` taint but preserve ``value`` taint).
_ORDER_CLEANSERS = {"sorted", "min", "max", "sum", "len", "frozenset_sorted"}

#: Method names that mutate their receiver with their arguments' values.
_MUTATORS = {
    "append",
    "add",
    "extend",
    "insert",
    "update",
    "setdefault",
    "__setitem__",
}


@dataclass(frozen=True)
class TaintLabel:
    """One taint fact: the kind (``value``/``order``) and its source."""

    kind: str
    source: str


@dataclass(frozen=True)
class TaintedCall:
    """A call whose arguments carry taint (directly or via other calls).

    ``chain`` is the syntactic callee (``("ckpt", "PlanCheckpoint")``),
    ``labels`` the taint observed directly in the arguments, and ``via``
    the call chains whose *return values* feed the arguments — resolved
    interprocedurally by the project rule.
    """

    chain: tuple[str, ...]
    lineno: int
    col: int
    labels: tuple[TaintLabel, ...]
    via: tuple[tuple[str, ...], ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "chain": list(self.chain),
            "lineno": self.lineno,
            "col": self.col,
            "labels": [[label.kind, label.source] for label in self.labels],
            "via": [list(chain) for chain in self.via],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TaintedCall":
        return cls(
            chain=tuple(payload["chain"]),
            lineno=int(payload["lineno"]),
            col=int(payload["col"]),
            labels=tuple(TaintLabel(k, s) for k, s in payload["labels"]),
            via=tuple(tuple(chain) for chain in payload["via"]),
        )


@dataclass
class FunctionFlow:
    """The taint facts one function exports to the whole-program pass."""

    #: Taint labels flowing directly into ``return`` expressions.
    return_labels: tuple[TaintLabel, ...] = ()
    #: Call chains whose return values flow into ``return`` expressions.
    return_via: tuple[tuple[str, ...], ...] = ()
    #: Every call observed with tainted arguments.
    tainted_calls: tuple[TaintedCall, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "return_labels": [[l.kind, l.source] for l in self.return_labels],
            "return_via": [list(chain) for chain in self.return_via],
            "tainted_calls": [call.to_dict() for call in self.tainted_calls],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FunctionFlow":
        return cls(
            return_labels=tuple(
                TaintLabel(k, s) for k, s in payload["return_labels"]
            ),
            return_via=tuple(tuple(c) for c in payload["return_via"]),
            tainted_calls=tuple(
                TaintedCall.from_dict(c) for c in payload["tainted_calls"]
            ),
        )


@dataclass
class _Taint:
    """Mutable taint state of one expression/variable."""

    labels: set[TaintLabel] = field(default_factory=set)
    via: set[tuple[str, ...]] = field(default_factory=set)

    def __bool__(self) -> bool:
        return bool(self.labels) or bool(self.via)

    def merge(self, other: "_Taint") -> "_Taint":
        self.labels |= other.labels
        self.via |= other.via
        return self

    def copy(self) -> "_Taint":
        return _Taint(set(self.labels), set(self.via))

    def without_order(self) -> "_Taint":
        return _Taint(
            {l for l in self.labels if l.kind != "order"}, set(self.via)
        )


def _chain(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` → ``("a", "b", "c")``; ``None`` for non-name chains."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return tuple(parts)
    return None


class _FlowAnalyzer:
    """Walks one function body, tracking per-name taint."""

    def __init__(
        self,
        *,
        time_aliases: set[str],
        os_aliases: set[str],
        numpy_aliases: set[str],
        random_aliases: set[str],
    ) -> None:
        self.time_aliases = time_aliases
        self.os_aliases = os_aliases
        self.numpy_aliases = numpy_aliases
        self.random_aliases = random_aliases
        self.env: dict[str, _Taint] = {}
        self.return_taint = _Taint()
        self.tainted_calls: dict[tuple[int, int, tuple[str, ...]], _Taint] = {}

    # -- sources -------------------------------------------------------
    def _source_labels(self, node: ast.Call) -> set[TaintLabel]:
        chain = _chain(node.func)
        labels: set[TaintLabel] = set()
        if chain is None:
            return labels
        if len(chain) == 2 and chain[0] in self.time_aliases and chain[1] in _TIME_SOURCES:
            labels.add(TaintLabel("value", f"time.{chain[1]}() wall-clock"))
        elif len(chain) == 2 and chain[0] in self.os_aliases and chain[1] == "urandom":
            labels.add(TaintLabel("value", "os.urandom() OS entropy"))
        elif chain[-1] in {"uuid1", "uuid4"}:
            labels.add(TaintLabel("value", f"{chain[-1]}() OS entropy"))
        elif chain[0] == "secrets":
            labels.add(TaintLabel("value", "secrets.* OS entropy"))
        elif (
            len(chain) == 3
            and chain[0] in self.numpy_aliases
            and chain[1] == "random"
            and chain[2] == "default_rng"
        ):
            unseeded = not node.args and not node.keywords
            explicit_none = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded or explicit_none:
                labels.add(TaintLabel("value", "unseeded default_rng()"))
        elif len(chain) >= 2 and chain[0] in self.random_aliases:
            labels.add(TaintLabel("value", f"stdlib random.{chain[-1]}()"))
        elif chain == ("id",):
            labels.add(TaintLabel("value", "id() object address"))
        elif chain == ("hash",) and node.args:
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                labels.add(
                    TaintLabel("value", "hash() of non-str (PYTHONHASHSEED)")
                )
        elif chain in (("set",), ("frozenset",)):
            labels.add(TaintLabel("order", f"{chain[0]}() iteration order"))
        return labels

    # -- expressions ---------------------------------------------------
    def eval(self, node: ast.expr | None) -> _Taint:
        if node is None or isinstance(node, ast.Constant):
            return _Taint()
        if isinstance(node, ast.Name):
            found = self.env.get(node.id)
            return found.copy() if found is not None else _Taint()
        if isinstance(node, ast.Attribute):
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value).merge(self.eval(node.slice))
        if isinstance(node, (ast.Starred, ast.Await, ast.UnaryOp)):
            inner = node.value if not isinstance(node, ast.UnaryOp) else node.operand
            return self.eval(inner)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left).merge(self.eval(node.right))
        if isinstance(node, ast.BoolOp):
            taint = _Taint()
            for value in node.values:
                taint.merge(self.eval(value))
            return taint
        if isinstance(node, ast.Compare):
            # Booleans derived from tainted values are sanctioned: a
            # deadline *check* is deterministic enough; smearing taint
            # through every `if elapsed > deadline` would drown the rule.
            for operand in [node.left, *node.comparators]:
                self.eval(operand)
            return _Taint()
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body).merge(self.eval(node.orelse))
        if isinstance(node, ast.JoinedStr):
            taint = _Taint()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taint.merge(self.eval(value.value))
            return taint
        if isinstance(node, (ast.List, ast.Tuple)):
            taint = _Taint()
            for elt in node.elts:
                taint.merge(self.eval(elt))
            return taint
        if isinstance(node, ast.Set):
            taint = _Taint()
            for elt in node.elts:
                taint.merge(self.eval(elt))
            taint.labels.add(TaintLabel("order", "set literal iteration order"))
            return taint
        if isinstance(node, ast.Dict):
            taint = _Taint()
            for key in node.keys:
                if key is not None:
                    taint.merge(self.eval(key))
            for value in node.values:
                taint.merge(self.eval(value))
            return taint
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            taint = self._comprehension_taint(node.generators)
            taint.merge(self.eval(node.elt))
            if isinstance(node, ast.SetComp):
                taint.labels.add(
                    TaintLabel("order", "set comprehension iteration order")
                )
            return taint
        if isinstance(node, ast.DictComp):
            taint = self._comprehension_taint(node.generators)
            taint.merge(self.eval(node.key)).merge(self.eval(node.value))
            return taint
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Lambda):
            return _Taint()
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self.env[node.target.id] = taint.copy()
            return taint
        # Anything else: evaluate children conservatively, stay clean.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return _Taint()

    def _comprehension_taint(
        self, generators: list[ast.comprehension]
    ) -> _Taint:
        taint = _Taint()
        for gen in generators:
            source = self.eval(gen.iter)
            taint.merge(source)
            for name_node in ast.walk(gen.target):
                if isinstance(name_node, ast.Name):
                    self.env[name_node.id] = source.copy()
        return taint

    def _eval_call(self, node: ast.Call) -> _Taint:
        chain = _chain(node.func)
        arg_taint = _Taint()
        for arg in node.args:
            arg_taint.merge(self.eval(arg))
        for keyword in node.keywords:
            arg_taint.merge(self.eval(keyword.value))
        # Record every call whose arguments carry taint; the project
        # rule decides later which of these are sinks.
        if chain is not None and arg_taint:
            key = (node.lineno, node.col_offset, chain)
            self.tainted_calls.setdefault(key, _Taint()).merge(arg_taint)
        # Receiver mutation: out.append(tainted) taints `out`.
        if (
            chain is not None
            and len(chain) >= 2
            and chain[-1] in _MUTATORS
            and chain[0] in self.env
        ):
            self.env[chain[0]].merge(arg_taint)
        labels = self._source_labels(node)
        if labels:
            result = arg_taint.copy()
            result.labels |= labels
            return result
        if chain is None:
            return arg_taint
        receiver = self.env.get(chain[0]) if len(chain) >= 2 else None
        if receiver is not None:
            # Methods of a nondeterministic *generator* return values as
            # tainted as the generator itself: rng.random() inherits the
            # unseeded-rng label. Other tainted receivers keep the
            # documented drop (ctx.finish() on a wall-clock-tainted ctx
            # stays clean).
            generator_labels = {
                label
                for label in receiver.labels
                if "rng" in label.source
                or "random" in label.source
                or "entropy" in label.source
            }
            if generator_labels:
                result = arg_taint.copy()
                result.labels |= generator_labels
                result.via |= receiver.via
                return result
        name = chain[-1]
        if name == "sorted" or name in _ORDER_CLEANSERS:
            return arg_taint.without_order()
        if name in _PASS_THROUGH:
            return arg_taint
        if name[:1].isupper():
            # Constructor-shaped: the object wraps its arguments, so
            # both taint labels and via-dependencies survive.
            return arg_taint
        # Ordinary call: argument taint is dropped (documented
        # under-approximation); the callee's own return taint is tracked
        # through the via dependency instead.
        return _Taint(set(), {chain})

    # -- statements ----------------------------------------------------
    def exec_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def _assign_target(self, target: ast.expr, taint: _Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint.copy()
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, taint)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Storing a tainted value into an object taints the object.
            base: ast.expr = target
            while isinstance(base, ast.Subscript):
                base = base.value
            chain = _chain(base)
            if chain is not None and chain[0] in self.env:
                self.env[chain[0]].merge(taint)
            elif chain is not None and taint:
                self.env.setdefault(chain[0], _Taint()).merge(taint)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taint)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            existing = (
                self.env.get(stmt.target.id, _Taint()).copy()
                if isinstance(stmt.target, ast.Name)
                else _Taint()
            )
            self._assign_target(stmt.target, existing.merge(taint))
        elif isinstance(stmt, ast.Return):
            self.return_taint.merge(self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            source = self.eval(stmt.iter)
            self._assign_target(stmt.target, source)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, taint)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are out of scope for this pass (their
            # bodies execute in their own frame); documented caveat.
            return
        # pass/break/continue/global/nonlocal/import/assert/delete: no flow.


def analyze_function(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    time_aliases: set[str],
    os_aliases: set[str],
    numpy_aliases: set[str],
    random_aliases: set[str],
) -> FunctionFlow:
    """Two-pass intra-procedural taint analysis of one function body.

    The second pass re-runs with the first pass's environment so
    loop-carried taint (``out.append(x)`` inside ``for x in tainted``)
    stabilises; two passes suffice because taint only grows and depth-1
    feedback is the only loop-carried dependency the model admits.
    """
    analyzer = _FlowAnalyzer(
        time_aliases=time_aliases,
        os_aliases=os_aliases,
        numpy_aliases=numpy_aliases,
        random_aliases=random_aliases,
    )
    for _ in range(2):
        analyzer.tainted_calls.clear()
        analyzer.return_taint = _Taint()
        analyzer.exec_body(function.body)
    calls = tuple(
        TaintedCall(
            chain=chain,
            lineno=lineno,
            col=col,
            labels=tuple(sorted(t.labels, key=lambda l: (l.kind, l.source))),
            via=tuple(sorted(t.via)),
        )
        for (lineno, col, chain), t in sorted(analyzer.tainted_calls.items())
    )
    return FunctionFlow(
        return_labels=tuple(
            sorted(analyzer.return_taint.labels, key=lambda l: (l.kind, l.source))
        ),
        return_via=tuple(sorted(analyzer.return_taint.via)),
        tainted_calls=calls,
    )
