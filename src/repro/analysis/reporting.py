"""Text and JSON reporters for analysis runs.

The text reporter is what CI logs show; the JSON reporter is a stable
machine-readable contract (violations, counts, and exit metadata) for
tooling built on top of the pass.
"""

from __future__ import annotations

import json

from repro.analysis.checker import AnalysisReport
from repro.analysis.rules import Violation

__all__ = ["render_json", "render_text"]


def render_text(
    report: AnalysisReport,
    *,
    baselined: list[Violation] | None = None,
    verbose_suppressed: bool = False,
) -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines: list[str] = []
    for path, message in report.parse_errors:
        lines.append(f"{path}:1:0: PARSE [error] {message}")
    for violation in report.violations:
        lines.append(violation.format_text())
    if verbose_suppressed:
        for violation in report.suppressed:
            lines.append(f"{violation.format_text()} (suppressed by noqa)")
    summary = [f"{report.checked_files} files checked"]
    counts = report.counts()
    if counts:
        summary.append(
            ", ".join(f"{code}: {count}" for code, count in counts.items())
        )
        summary.append(f"{len(report.violations)} violations")
    else:
        summary.append("no violations")
    if report.suppressed:
        summary.append(f"{len(report.suppressed)} suppressed")
    if baselined:
        summary.append(f"{len(baselined)} baselined")
    if report.parse_errors:
        summary.append(f"{len(report.parse_errors)} parse errors")
    lines.append(" — ".join(summary))
    return "\n".join(lines)


def render_json(
    report: AnalysisReport,
    *,
    baselined: list[Violation] | None = None,
) -> str:
    """Machine-readable rendering of the full run outcome."""
    payload = {
        "checked_files": report.checked_files,
        "violations": [v.as_dict() for v in report.violations],
        "suppressed": [v.as_dict() for v in report.suppressed],
        "baselined": [v.as_dict() for v in (baselined or [])],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
        "counts": report.counts(),
    }
    return json.dumps(payload, indent=2)
