"""Text, JSON, and SARIF reporters for analysis runs.

The text reporter is what CI logs show; the JSON reporter is a stable
machine-readable contract (violations, counts, and exit metadata) for
tooling built on top of the pass; the SARIF 2.1.0 reporter feeds GitHub
code scanning so whole-program findings annotate pull requests.
"""

from __future__ import annotations

import json

from repro.analysis.checker import AnalysisReport
from repro.analysis.rules import RULES, Severity, Violation

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(
    report: AnalysisReport,
    *,
    baselined: list[Violation] | None = None,
    verbose_suppressed: bool = False,
) -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines: list[str] = []
    for path, message in report.parse_errors:
        lines.append(f"{path}:1:0: PARSE [error] {message}")
    for violation in report.violations:
        lines.append(violation.format_text())
    if verbose_suppressed:
        for violation in report.suppressed:
            lines.append(f"{violation.format_text()} (suppressed by noqa)")
    summary = [f"{report.checked_files} files checked"]
    counts = report.counts()
    if counts:
        summary.append(
            ", ".join(f"{code}: {count}" for code, count in counts.items())
        )
        summary.append(f"{len(report.violations)} violations")
    else:
        summary.append("no violations")
    if report.suppressed:
        summary.append(f"{len(report.suppressed)} suppressed")
    if baselined:
        summary.append(f"{len(baselined)} baselined")
    if report.parse_errors:
        summary.append(f"{len(report.parse_errors)} parse errors")
    lines.append(" — ".join(summary))
    return "\n".join(lines)


def render_json(
    report: AnalysisReport,
    *,
    baselined: list[Violation] | None = None,
) -> str:
    """Machine-readable rendering of the full run outcome."""
    payload = {
        "checked_files": report.checked_files,
        "violations": [v.as_dict() for v in report.violations],
        "suppressed": [v.as_dict() for v in report.suppressed],
        "baselined": [v.as_dict() for v in (baselined or [])],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
        "counts": report.counts(),
    }
    return json.dumps(payload, indent=2)


_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF levels for our severities (parse failures map to "error" too).
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _sarif_rules() -> list[dict[str, object]]:
    """The driver's rule metadata: every registered rule + pseudo-codes."""
    descriptors: list[dict[str, object]] = []
    for code, registered in sorted(RULES.items()):
        descriptors.append(
            {
                "id": code,
                "name": registered.name,
                "shortDescription": {"text": registered.summary},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[registered.severity]
                },
                "properties": {"scope": registered.scope},
            }
        )
    descriptors.append(
        {
            "id": "SWP000",
            "name": "unused-suppression",
            "shortDescription": {
                "text": "a # noqa comment suppresses nothing, or names an"
                " unknown rule"
            },
            "defaultConfiguration": {"level": "warning"},
        }
    )
    descriptors.append(
        {
            "id": "PARSE",
            "name": "parse-error",
            "shortDescription": {"text": "the file could not be parsed"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    return descriptors


def _sarif_result(violation: Violation) -> dict[str, object]:
    return {
        "ruleId": violation.rule,
        "level": _SARIF_LEVELS[violation.severity],
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": max(violation.column + 1, 1),
                    },
                }
            }
        ],
        # The baseline fingerprint doubles as the stable result identity
        # GitHub uses to track alerts across pushes.
        "partialFingerprints": {"swopeFingerprint/v1": violation.fingerprint},
    }


def render_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0 rendering for GitHub code-scanning upload.

    Suppressed and baselined findings are deliberately omitted — an
    alert that a human already justified must not reopen on every push.
    Parse errors become ``PARSE``-rule results so a broken file is
    visible in the same place as the findings it hides.
    """
    results = [_sarif_result(v) for v in report.violations]
    for path, message in report.parse_errors:
        results.append(
            {
                "ruleId": "PARSE",
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
                "partialFingerprints": {
                    "swopeFingerprint/v1": f"{path}::PARSE::{message}"
                },
            }
        )
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "version": "1.0.0",
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
