"""``python -m repro.analysis`` — run the SWOPE lint rules over a tree.

Exit status contract (what CI gates on):

* ``0`` — no unsuppressed error-severity violations (warnings allowed
  unless ``--fail-on-warning``);
* ``1`` — at least one new error-severity violation, a parse failure,
  or (with ``--fail-on-warning``) any warning;
* ``2`` — usage error (unknown rule code, unreadable baseline, …).

Typical invocations::

    python -m repro.analysis src/ tests/
    python -m repro.analysis src/ --select SWP002,SWP008 --format json
    python -m repro.analysis src/ --baseline analysis-baseline.json
    python -m repro.analysis src/ --baseline debt.json --update-baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import checks as _checks  # noqa: F401 - registers rules
from repro.analysis.baseline import Baseline
from repro.analysis.checker import AnalysisReport, analyze_paths
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import RULES, Violation
from repro.exceptions import AnalysisError

__all__ = ["build_parser", "main"]


def _parse_codes(raw: str) -> list[str]:
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="SWOPE-aware static analysis (rules SWP001-SWP010).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="ratchet file: violations recorded there are tolerated",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current violations and exit 0"
        " (refuses to grow an existing baseline)",
    )
    parser.add_argument(
        "--fail-on-warning",
        action="store_true",
        help="exit 1 on warning-severity findings too",
    )
    parser.add_argument(
        "--no-unused-suppressions",
        action="store_true",
        help="do not report stale # noqa comments (SWP000)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list violations silenced by # noqa (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code, registered in sorted(RULES.items()):
        lines.append(
            f"{code} {registered.name} [{registered.severity}]"
            f" — {registered.summary} (scope: {registered.scope})"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report: AnalysisReport = analyze_paths(
            [Path(p) for p in args.paths],
            select=_parse_codes(args.select) if args.select else None,
            ignore=_parse_codes(args.ignore) if args.ignore else None,
            report_unused=not args.no_unused_suppressions,
            display_root=Path.cwd(),
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baselined: list[Violation] = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.update_baseline:
            new_baseline = Baseline.from_violations(report.violations)
            if baseline_path.exists():
                try:
                    previous = Baseline.load(baseline_path)
                except AnalysisError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                if len(new_baseline) > len(previous):
                    print(
                        "error: refusing to grow the baseline"
                        f" ({len(previous)} -> {len(new_baseline)} violations);"
                        " fix the new findings instead",
                        file=sys.stderr,
                    )
                    return 2
            new_baseline.save(baseline_path)
            print(
                f"baseline {baseline_path} updated:"
                f" {len(new_baseline)} tolerated violations"
            )
            return 0
        if baseline_path.exists():
            try:
                tolerated = Baseline.load(baseline_path)
            except AnalysisError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            report.violations, baselined = tolerated.filter(report.violations)

    if args.format == "json":
        print(render_json(report, baselined=baselined))
    else:
        print(
            render_text(
                report,
                baselined=baselined,
                verbose_suppressed=args.show_suppressed,
            )
        )
    if report.has_errors():
        return 1
    if args.fail_on_warning and report.has_warnings():
        return 1
    return 0
