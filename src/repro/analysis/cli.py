"""``python -m repro.analysis`` — run the SWOPE lint rules over a tree.

Exit status contract (what CI gates on):

* ``0`` — no unsuppressed error-severity violations (warnings allowed
  unless ``--fail-on-warning``);
* ``1`` — at least one new error-severity violation, a parse failure,
  or (with ``--fail-on-warning``) any warning;
* ``2`` — usage error (unknown rule code, unreadable baseline, …).

Typical invocations::

    python -m repro.analysis src/ tests/
    python -m repro.analysis src/ --select SWP002,SWP008 --format json
    python -m repro.analysis src/ --baseline analysis-baseline.json
    python -m repro.analysis src/ --baseline debt.json --update-baseline
    python -m repro.analysis --project src/ scripts/
    python -m repro.analysis --project --format sarif src/
    python -m repro.analysis --changed-only src/ tests/
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import checks as _checks  # noqa: F401 - registers rules
from repro.analysis import checks_project as _checks_project  # noqa: F401
from repro.analysis.baseline import Baseline
from repro.analysis.checker import AnalysisReport, analyze_paths, analyze_project
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rules import RULES, Violation
from repro.exceptions import AnalysisError

__all__ = ["build_parser", "main"]


def _parse_codes(raw: str) -> list[str]:
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="SWOPE-aware static analysis (rules SWP001-SWP016).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="whole-program mode: build the cross-module call graph and run"
        " the project rules (SWP013-SWP016) as well",
    )
    parser.add_argument(
        "--graph-cache",
        metavar="FILE",
        help="with --project: cache per-module graph summaries (sha256-keyed"
        " JSON) so repeat runs only re-extract changed files",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="narrow per-module rules to files changed vs git HEAD"
        " (+ untracked); whole-program rules still see the full tree;"
        " falls back to a full run outside a git checkout",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="ratchet file: violations recorded there are tolerated",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current violations and exit 0"
        " (refuses to grow an existing baseline)",
    )
    parser.add_argument(
        "--fail-on-warning",
        action="store_true",
        help="exit 1 on warning-severity findings too",
    )
    parser.add_argument(
        "--no-unused-suppressions",
        action="store_true",
        help="do not report stale # noqa comments (SWP000)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list violations silenced by # noqa (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _narrow_to_changed(
    paths: list[Path], changed: list[str]
) -> list[Path]:
    """Changed files that sit under one of the requested paths."""
    roots = [p.resolve() for p in paths]
    out: list[Path] = []
    for name in changed:
        candidate = Path(name)
        if not candidate.exists():
            continue  # deleted in the working tree
        resolved = candidate.resolve()
        if any(root == resolved or root in resolved.parents for root in roots):
            out.append(candidate)
    return out


def _changed_python_files() -> list[str] | None:
    """Repo-relative ``.py`` paths changed vs HEAD, plus untracked ones.

    Returns ``None`` when git is unavailable or the working directory is
    not a checkout — callers fall back to a full run, because silently
    analysing nothing would let regressions through pre-commit.
    """
    outputs: list[str] = []
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        outputs.append(proc.stdout)
    return sorted(
        {
            line.strip()
            for output in outputs
            for line in output.splitlines()
            if line.strip().endswith(".py")
        }
    )


def _list_rules() -> str:
    lines = []
    for code, registered in sorted(RULES.items()):
        lines.append(
            f"{code} {registered.name} [{registered.severity}]"
            f" — {registered.summary} (scope: {registered.scope})"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2
    if args.graph_cache and not args.project:
        print("error: --graph-cache requires --project", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    changed: list[str] | None = None
    if args.changed_only:
        changed = _changed_python_files()
        if changed is None:
            print(
                "warning: --changed-only needs git; analysing the full tree",
                file=sys.stderr,
            )
    try:
        select = _parse_codes(args.select) if args.select else None
        ignore = _parse_codes(args.ignore) if args.ignore else None
        report_unused = not args.no_unused_suppressions
        if args.project:
            report: AnalysisReport = analyze_project(
                [Path(p) for p in args.paths],
                select=select,
                ignore=ignore,
                report_unused=report_unused,
                display_root=Path.cwd(),
                cache_path=Path(args.graph_cache) if args.graph_cache else None,
                module_files=changed,
            )
        else:
            target_paths = [Path(p) for p in args.paths]
            if changed is not None:
                target_paths = _narrow_to_changed(target_paths, changed)
                if not target_paths:
                    print("no changed Python files under the given paths")
                    return 0
            report = analyze_paths(
                target_paths,
                select=select,
                ignore=ignore,
                report_unused=report_unused,
                display_root=Path.cwd(),
            )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baselined: list[Violation] = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.update_baseline:
            new_baseline = Baseline.from_violations(report.violations)
            if baseline_path.exists():
                try:
                    previous = Baseline.load(baseline_path)
                except AnalysisError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                if len(new_baseline) > len(previous):
                    print(
                        "error: refusing to grow the baseline"
                        f" ({len(previous)} -> {len(new_baseline)} violations);"
                        " fix the new findings instead",
                        file=sys.stderr,
                    )
                    return 2
            new_baseline.save(baseline_path)
            print(
                f"baseline {baseline_path} updated:"
                f" {len(new_baseline)} tolerated violations"
            )
            return 0
        if baseline_path.exists():
            try:
                tolerated = Baseline.load(baseline_path)
            except AnalysisError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            report.violations, baselined = tolerated.filter(report.violations)

    if args.format == "sarif":
        print(render_sarif(report))
    elif args.format == "json":
        print(render_json(report, baselined=baselined))
    else:
        print(
            render_text(
                report,
                baselined=baselined,
                verbose_suppressed=args.show_suppressed,
            )
        )
    if report.has_errors():
        return 1
    if args.fail_on_warning and report.has_warnings():
        return 1
    return 0
