"""The whole-program analysis context handed to ``@project_rule`` checks.

A :class:`ProjectContext` pairs the linked :class:`~repro.analysis.graph.ProjectGraph`
with the per-module :class:`~repro.analysis.checker.ModuleContext` objects
(needed for snippets and positions when phrasing violations) and knows
which functions count as *public entry points* — the roots every
reachability-based rule (SWP014, SWP016) starts from.

Entry-point contract (kept in sync with ``docs/ANALYSIS.md``):

* module-level functions named ``swope_*`` (the paper-facing API);
* ``run_query_spec`` (the planner dispatch seam, SWP011's target);
* public methods (no leading underscore) of ``PlanExecutor`` and
  ``QuerySession``;
* ``repro.cli.main`` (the command-line surface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.checker import ModuleContext
from repro.analysis.graph import FunctionInfo, ProjectGraph
from repro.analysis.rules import Rule, Violation

__all__ = ["ProjectContext", "entry_point_keys"]

#: Class names whose public methods are externally callable surfaces.
_ENTRY_CLASSES = {"PlanExecutor", "QuerySession"}

#: Module-level function names that are entry points regardless of prefix.
_ENTRY_FUNCTIONS = {"run_query_spec", "main"}


def entry_point_keys(graph: ProjectGraph) -> list[str]:
    """Function keys of every public entry point, deterministic order."""
    keys: list[str] = []
    for key in sorted(graph.functions):
        info = graph.functions[key]
        if info.cls is None and "<locals>" not in info.qualname:
            if info.name.startswith("swope_"):
                keys.append(key)
            elif info.name in _ENTRY_FUNCTIONS and info.module in (
                "repro.cli",
                "repro.core.plan",
            ):
                keys.append(key)
        elif (
            info.cls in _ENTRY_CLASSES
            and not info.name.startswith("_")
            and "<locals>" not in info.qualname
        ):
            keys.append(key)
    return keys


@dataclass
class ProjectContext:
    """Everything a whole-program rule needs: graph + module contexts."""

    graph: ProjectGraph
    #: Parsed module contexts keyed by dotted module name.
    contexts: dict[str, ModuleContext] = field(default_factory=dict)

    def module_context(self, module: str) -> ModuleContext | None:
        return self.contexts.get(module)

    def entry_points(self) -> list[str]:
        """Public entry-point function keys (see module docstring)."""
        return entry_point_keys(self.graph)

    def violation(
        self,
        rule: Rule,
        info: FunctionInfo,
        lineno: int,
        message: str,
        *,
        column: int = 0,
    ) -> Violation:
        """Build a violation positioned inside ``info``'s module.

        Falls back to the graph summary's recorded path when the module
        context is unavailable (cached summary for an unparsed file —
        possible under ``--changed-only``-style partial parses).
        """
        context = self.contexts.get(info.module)
        if context is not None:
            return Violation(
                rule=rule.code,
                path=context.path,
                line=lineno,
                column=column,
                message=message,
                severity=rule.severity,
                snippet=context.source_line(lineno),
            )
        summary = self.graph.modules.get(info.module)
        path = summary.path if summary is not None else f"<{info.module}>"
        return Violation(
            rule=rule.code,
            path=path,
            line=lineno,
            column=column,
            message=message,
            severity=rule.severity,
            snippet="",
        )

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every function in the project, deterministic order."""
        for key in sorted(self.graph.functions):
            yield self.graph.functions[key]
