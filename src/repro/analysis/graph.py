"""Project-wide import graph + call graph for whole-program rules.

Per-module rules see one AST at a time; the cross-module invariants
(SWP013–SWP016) need to know *who calls whom* across ``src/repro``.
This module extracts a compact, JSON-serialisable summary of every
module — name bindings, classes, and per-function facts (calls, loops,
raises, shared-state writes, taint flow) — and links the summaries into
a :class:`ProjectGraph` with name resolution and reachability queries.

Design constraints:

* **Stdlib only** (``ast`` + ``hashlib`` + ``json``), like the rest of
  the analysis package.
* **Incremental**: summaries are keyed by the file's sha256 and cached
  as JSON (``--graph-cache``), so repeat runs re-extract only changed
  files. Linking (cheap) is redone from summaries every run.
* **Honest approximations**: resolution follows import aliases,
  ``self``-method calls (with base-class chasing), module-local names,
  and ``__init__`` re-export chains; calls through arbitrary local
  objects (``ctx.finish()`` where ``ctx`` is a local) stay unresolved.
  The soundness consequences are documented in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.analysis.checks import _BUDGET_CHECK_CALLS, _is_adaptive_loop
from repro.analysis.flow import FunctionFlow, analyze_function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.checker import ModuleContext

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "GRAPH_CACHE_VERSION",
    "LoopInfo",
    "ModuleSummary",
    "ProjectGraph",
    "RaiseSite",
    "Resolved",
    "SharedWrite",
    "extract_module",
    "load_cache",
    "save_cache",
]

#: Bump when the summary shape changes; stale caches are discarded whole.
GRAPH_CACHE_VERSION = 1

#: Worker-dispatch method names: ``pool.submit(fn, ...)``, ``pool.map(fn, ...)``.
_DISPATCH_METHODS = {"submit", "map"}

#: Receiver methods that mutate shared containers in place.
_SHARED_MUTATORS = {
    "append",
    "add",
    "extend",
    "insert",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "appendleft",
}

#: Module-level constructors that produce mutable containers.
_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
}


def _chain(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return tuple(parts)
    return None


@dataclass(frozen=True)
class CallSite:
    """One syntactic call inside a function body."""

    chain: tuple[str, ...]
    lineno: int

    def to_dict(self) -> list[Any]:
        return [list(self.chain), self.lineno]

    @classmethod
    def from_dict(cls, payload: list[Any]) -> "CallSite":
        return cls(chain=tuple(payload[0]), lineno=int(payload[1]))


@dataclass(frozen=True)
class LoopInfo:
    """One ``for``/``while`` loop: is it adaptive, is it budget-checked."""

    lineno: int
    kind: str  # "for" | "while"
    adaptive: bool
    checked: bool

    def to_dict(self) -> list[Any]:
        return [self.lineno, self.kind, self.adaptive, self.checked]

    @classmethod
    def from_dict(cls, payload: list[Any]) -> "LoopInfo":
        return cls(int(payload[0]), payload[1], bool(payload[2]), bool(payload[3]))


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise <chain>(...)`` site (bare re-raises are not recorded)."""

    chain: tuple[str, ...]
    lineno: int

    def to_dict(self) -> list[Any]:
        return [list(self.chain), self.lineno]

    @classmethod
    def from_dict(cls, payload: list[Any]) -> "RaiseSite":
        return cls(chain=tuple(payload[0]), lineno=int(payload[1]))


@dataclass(frozen=True)
class SharedWrite:
    """A write to state that outlives the function's own frame.

    ``kind`` is ``"global"`` (rebinding via ``global``), ``"nonlocal"``
    (rebinding a closure cell), or ``"mutation"`` (in-place mutation of
    a module-level mutable container). ``locked`` records whether the
    write sits lexically inside a ``with <...lock...>:`` block.
    """

    name: str
    lineno: int
    kind: str
    locked: bool

    def to_dict(self) -> list[Any]:
        return [self.name, self.lineno, self.kind, self.locked]

    @classmethod
    def from_dict(cls, payload: list[Any]) -> "SharedWrite":
        return cls(payload[0], int(payload[1]), payload[2], bool(payload[3]))


@dataclass
class FunctionInfo:
    """Per-function facts the whole-program rules consume."""

    qualname: str  # "name", "Class.name", or "outer.<locals>.inner"
    module: str
    name: str
    cls: str | None
    lineno: int
    calls: list[CallSite] = field(default_factory=list)
    loops: list[LoopInfo] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    shared_writes: list[SharedWrite] = field(default_factory=list)
    #: Names this function dispatches to workers (``pool.submit(fn)``,
    #: ``Thread(target=fn)``) — call edges *and* worker-root markers.
    dispatches: list[CallSite] = field(default_factory=list)
    #: Function-level import bindings overlaying the module's.
    bindings: dict[str, str] = field(default_factory=dict)
    #: Names of functions defined directly inside this one.
    local_defs: dict[str, str] = field(default_factory=dict)
    flow: FunctionFlow = field(default_factory=FunctionFlow)

    @property
    def key(self) -> str:
        """Graph-wide identity: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "cls": self.cls,
            "lineno": self.lineno,
            "calls": [c.to_dict() for c in self.calls],
            "loops": [l.to_dict() for l in self.loops],
            "raises": [r.to_dict() for r in self.raises],
            "shared_writes": [w.to_dict() for w in self.shared_writes],
            "dispatches": [d.to_dict() for d in self.dispatches],
            "bindings": dict(self.bindings),
            "local_defs": dict(self.local_defs),
            "flow": self.flow.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=payload["qualname"],
            module=payload["module"],
            name=payload["name"],
            cls=payload["cls"],
            lineno=int(payload["lineno"]),
            calls=[CallSite.from_dict(c) for c in payload["calls"]],
            loops=[LoopInfo.from_dict(l) for l in payload["loops"]],
            raises=[RaiseSite.from_dict(r) for r in payload["raises"]],
            shared_writes=[SharedWrite.from_dict(w) for w in payload["shared_writes"]],
            dispatches=[CallSite.from_dict(d) for d in payload["dispatches"]],
            bindings=dict(payload["bindings"]),
            local_defs=dict(payload["local_defs"]),
            flow=FunctionFlow.from_dict(payload["flow"]),
        )


@dataclass
class ClassInfo:
    """One class: bases (as dotted strings) and method names."""

    name: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ClassInfo":
        return cls(
            name=payload["name"],
            lineno=int(payload["lineno"]),
            bases=list(payload["bases"]),
            methods=list(payload["methods"]),
        )


@dataclass
class ModuleSummary:
    """Everything the linker needs to know about one module."""

    module: str
    path: str
    sha256: str
    is_package: bool
    #: Module-level name bindings: local name → dotted target.
    bindings: dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers.
    mutable_globals: list[str] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "sha256": self.sha256,
            "is_package": self.is_package,
            "bindings": dict(self.bindings),
            "mutable_globals": list(self.mutable_globals),
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            sha256=payload["sha256"],
            is_package=bool(payload["is_package"]),
            bindings=dict(payload["bindings"]),
            mutable_globals=list(payload["mutable_globals"]),
            classes={
                k: ClassInfo.from_dict(v) for k, v in payload["classes"].items()
            },
            functions={
                k: FunctionInfo.from_dict(v)
                for k, v in payload["functions"].items()
            },
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _import_bindings(
    node: ast.Import | ast.ImportFrom, module: str, is_package: bool
) -> dict[str, str]:
    """Local name → fully-dotted target for one import statement."""
    out: dict[str, str] = {}
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            out[local] = alias.name if alias.asname else alias.name.split(".")[0]
        return out
    # from X import a, b as c  (level handles relative imports)
    parts = module.split(".") if module else []
    if node.level > 0:
        base = parts if is_package else parts[:-1]
        if node.level > 1:
            base = base[: len(base) - (node.level - 1)]
        prefix = base + (node.module.split(".") if node.module else [])
    else:
        prefix = node.module.split(".") if node.module else []
    for alias in node.names:
        if alias.name == "*":
            continue  # wildcard: unresolvable, documented caveat
        out[alias.asname or alias.name] = ".".join([*prefix, alias.name])
    return out


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _chain(node.func)
        return chain is not None and chain[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _loop_is_checked(loop: ast.For | ast.While) -> bool:
    for stmt in [*loop.body, *loop.orelse]:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                chain = _chain(node.func)
                if chain is not None and chain[-1] in _BUDGET_CHECK_CALLS:
                    return True
    return False


def _looks_like_lock(node: ast.expr) -> bool:
    """Heuristic: a ``with`` context manager that is a lock/mutex."""
    chain = _chain(node.func if isinstance(node, ast.Call) else node)
    if chain is None:
        return False
    return any("lock" in part.lower() or "mutex" in part.lower() for part in chain)


class _FunctionExtractor(ast.NodeVisitor):
    """Collects one function's facts, stopping at nested defs."""

    def __init__(self, info: FunctionInfo, mutable_globals: set[str]) -> None:
        self.info = info
        self.mutable_globals = mutable_globals
        self.global_names: set[str] = set()
        self.nonlocal_names: set[str] = set()
        self.lock_depth = 0

    # -- nested scopes: record, don't descend --------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.info.local_defs[node.name] = (
            f"{self.info.qualname}.<locals>.{node.name}"
        )

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes: out of scope

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- facts ----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.info.bindings.update(
            _import_bindings(node, self.info.module, False)
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.info.bindings.update(
            _import_bindings(node, self.info.module, False)
        )

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.nonlocal_names.update(node.names)

    def visit_With(self, node: ast.With) -> None:
        locked = any(_looks_like_lock(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if locked:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.lock_depth -= 1

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def _record_write(self, name: str, lineno: int, kind: str) -> None:
        self.info.shared_writes.append(
            SharedWrite(
                name=name, lineno=lineno, kind=kind, locked=self.lock_depth > 0
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target, node.lineno)
        if node.value is not None:
            self.visit(node.value)

    def _check_store(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self._record_write(target.id, lineno, "global")
            elif target.id in self.nonlocal_names:
                self._record_write(target.id, lineno, "nonlocal")
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base: ast.expr = target
            while isinstance(base, ast.Subscript):
                base = base.value
            chain = _chain(base)
            if chain is not None and chain[0] in (
                self.mutable_globals | self.global_names
            ):
                self._record_write(chain[0], lineno, "mutation")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, lineno)

    def visit_For(self, node: ast.For) -> None:
        self._record_loop(node, "for")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._record_loop(node, "while")
        self.generic_visit(node)

    def _record_loop(self, node: ast.For | ast.While, kind: str) -> None:
        self.info.loops.append(
            LoopInfo(
                lineno=node.lineno,
                kind=kind,
                adaptive=_is_adaptive_loop(node),
                checked=_loop_is_checked(node),
            )
        )

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if exc is not None:
            target = exc.func if isinstance(exc, ast.Call) else exc
            chain = _chain(target)
            if chain is not None:
                self.info.raises.append(
                    RaiseSite(chain=chain, lineno=node.lineno)
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _chain(node.func)
        if chain is not None:
            self.info.calls.append(CallSite(chain=chain, lineno=node.lineno))
            # Mutation of a module-level container counts as a write.
            if (
                len(chain) >= 2
                and chain[-1] in _SHARED_MUTATORS
                and chain[0] in (self.mutable_globals | self.global_names)
            ):
                self._record_write(chain[0], node.lineno, "mutation")
            # Worker dispatch: pool.submit(fn, ...), pool.map(fn, ...),
            # Thread(target=fn).
            if chain[-1] in _DISPATCH_METHODS and node.args:
                worker = _chain(node.args[0])
                if worker is not None:
                    site = CallSite(chain=worker, lineno=node.lineno)
                    self.info.dispatches.append(site)
                    self.info.calls.append(site)
            if chain[-1] == "Thread":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        worker = _chain(keyword.value)
                        if worker is not None:
                            site = CallSite(chain=worker, lineno=node.lineno)
                            self.info.dispatches.append(site)
                            self.info.calls.append(site)
        self.generic_visit(node)


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    module: str,
    qualname: str,
    cls: str | None,
    mutable_globals: set[str],
    context: "ModuleContext",
) -> FunctionInfo:
    info = FunctionInfo(
        qualname=qualname,
        module=module,
        name=node.name,
        cls=cls,
        lineno=node.lineno,
    )
    extractor = _FunctionExtractor(info, mutable_globals)
    for stmt in node.body:
        extractor.visit(stmt)
    info.flow = analyze_function(
        node,
        time_aliases=set(context.time_aliases) or {"time"},
        os_aliases={"os"},
        numpy_aliases=set(context.numpy_aliases) or {"np", "numpy"},
        random_aliases=set(context.random_aliases),
    )
    return info


def _iter_defs(
    body: Iterable[ast.stmt], prefix: str, cls: str | None
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, str | None]]:
    """Yield every (def node, qualname, class) in ``body``, recursively."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{stmt.name}"
            yield stmt, qualname, cls
            yield from _iter_defs(stmt.body, f"{qualname}.<locals>.", cls)
        elif isinstance(stmt, ast.ClassDef):
            yield from _iter_defs(
                stmt.body, f"{prefix}{stmt.name}.", f"{prefix}{stmt.name}"
            )
        elif isinstance(stmt, (ast.If, ast.Try)):
            # defs behind TYPE_CHECKING / fallback guards still exist
            bodies: list[list[ast.stmt]] = [getattr(stmt, "body", [])]
            bodies.append(getattr(stmt, "orelse", []))
            if isinstance(stmt, ast.Try):
                bodies.append(stmt.finalbody)
                for handler in stmt.handlers:
                    bodies.append(handler.body)
            for nested in bodies:
                yield from _iter_defs(nested, prefix, cls)


def extract_module(context: "ModuleContext") -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module."""
    is_package = Path(context.path).name == "__init__.py"
    sha = hashlib.sha256(context.text.encode("utf-8")).hexdigest()
    summary = ModuleSummary(
        module=context.module,
        path=context.path,
        sha256=sha,
        is_package=is_package,
    )
    for stmt in context.tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            summary.bindings.update(
                _import_bindings(stmt, context.module, is_package)
            )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and _is_mutable_value(stmt.value):
                    summary.mutable_globals.append(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.value is not None
                and _is_mutable_value(stmt.value)
            ):
                summary.mutable_globals.append(stmt.target.id)
        elif isinstance(stmt, ast.ClassDef):
            bases = []
            for base in stmt.bases:
                base_chain = _chain(base)
                if base_chain is not None:
                    bases.append(".".join(base_chain))
            summary.classes[stmt.name] = ClassInfo(
                name=stmt.name,
                lineno=stmt.lineno,
                bases=bases,
                methods=[
                    s.name
                    for s in stmt.body
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                ],
            )
        elif isinstance(stmt, ast.If):
            # TYPE_CHECKING guards at module level may hide imports.
            for nested in [*stmt.body, *stmt.orelse]:
                if isinstance(nested, (ast.Import, ast.ImportFrom)):
                    summary.bindings.update(
                        _import_bindings(nested, context.module, is_package)
                    )
    mutable = set(summary.mutable_globals)
    for node, qualname, cls in _iter_defs(context.tree.body, "", None):
        info = _extract_function(
            node,
            module=context.module,
            qualname=qualname,
            cls=cls,
            mutable_globals=mutable,
            context=context,
        )
        summary.functions[qualname] = info
    return summary


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def load_cache(path: Path) -> dict[str, ModuleSummary]:
    """``{sha256: ModuleSummary}`` from a cache file; ``{}`` if unusable."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("version") != GRAPH_CACHE_VERSION:
        return {}
    out: dict[str, ModuleSummary] = {}
    try:
        for sha, entry in payload.get("modules", {}).items():
            out[sha] = ModuleSummary.from_dict(entry)
    except (KeyError, TypeError, ValueError):
        return {}  # shape drift: rebuild everything
    return out


def save_cache(path: Path, summaries: Iterable[ModuleSummary]) -> None:
    """Persist summaries keyed by content sha (atomic, SWP012-compliant)."""
    from repro.durability.atomic import atomic_write_text

    payload = {
        "version": GRAPH_CACHE_VERSION,
        "modules": {s.sha256: s.to_dict() for s in summaries},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(payload, sort_keys=True))


# ----------------------------------------------------------------------
# Linking + resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Resolved:
    """Outcome of resolving a name: a function key, class, or module."""

    kind: str  # "function" | "class" | "module"
    module: str
    qualname: str = ""

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}" if self.qualname else self.module


class ProjectGraph:
    """Linked module summaries with name resolution and reachability."""

    #: Re-export chains longer than this are cyclic or pathological.
    _MAX_CHASE = 10

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries
        }
        #: Every function in the project, keyed ``module:qualname``.
        self.functions: dict[str, FunctionInfo] = {}
        for summary in self.modules.values():
            for info in summary.functions.values():
                self.functions[info.key] = info
        self._edges: dict[str, set[str]] | None = None

    # -- dotted-name resolution ----------------------------------------
    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Resolved | None:
        """Resolve ``repro.core.engine.swope_entropy``-style names.

        Finds the longest module prefix, then walks the remainder
        through that module's defs, classes, and re-export bindings
        (``__init__`` chains are chased up to a fixed depth).
        """
        if _depth > self._MAX_CHASE:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            summary = self.modules.get(module_name)
            if summary is None:
                continue
            remainder = parts[cut:]
            if not remainder:
                return Resolved("module", module_name)
            head = remainder[0]
            if head in summary.functions and len(remainder) == 1:
                return Resolved("function", module_name, head)
            if head in summary.classes:
                if len(remainder) == 1:
                    return Resolved("class", module_name, head)
                if len(remainder) == 2:
                    return self._resolve_method(summary, head, remainder[1])
                return None
            if head in summary.bindings:
                target = ".".join([summary.bindings[head], *remainder[1:]])
                return self.resolve_dotted(target, _depth + 1)
            return None
        return None

    def _resolve_method(
        self, summary: ModuleSummary, cls_name: str, method: str, _depth: int = 0
    ) -> Resolved | None:
        """Find ``method`` on ``cls_name`` or its (resolvable) bases."""
        if _depth > self._MAX_CHASE:
            return None
        qualname = f"{cls_name}.{method}"
        if qualname in summary.functions:
            return Resolved("function", summary.module, qualname)
        cls = summary.classes.get(cls_name)
        if cls is None:
            return None
        for base in cls.bases:
            base_resolved = self._resolve_in_module(summary, base)
            if base_resolved is None or base_resolved.kind != "class":
                continue
            base_summary = self.modules.get(base_resolved.module)
            if base_summary is None:
                continue
            found = self._resolve_method(
                base_summary, base_resolved.qualname, method, _depth + 1
            )
            if found is not None:
                return found
        return None

    def _resolve_in_module(
        self, summary: ModuleSummary, dotted: str
    ) -> Resolved | None:
        """Resolve a dotted string as seen from inside ``summary``."""
        parts = dotted.split(".")
        head = parts[0]
        if head in summary.bindings:
            return self.resolve_dotted(
                ".".join([summary.bindings[head], *parts[1:]])
            )
        if head in summary.classes and len(parts) == 1:
            return Resolved("class", summary.module, head)
        if head in summary.classes and len(parts) == 2:
            return self._resolve_method(summary, head, parts[1])
        if head in summary.functions and len(parts) == 1:
            return Resolved("function", summary.module, head)
        return self.resolve_dotted(dotted)

    def resolve_chain(
        self, chain: tuple[str, ...], info: FunctionInfo
    ) -> Resolved | None:
        """Resolve a syntactic call chain as seen from inside ``info``.

        Handles ``self.method()`` (own class + base chasing), names the
        function imported locally, nested defs, module bindings, and
        module-local defs/classes. Calls through arbitrary locals are
        unresolvable by design.
        """
        summary = self.modules.get(info.module)
        if summary is None:
            return None
        head = chain[0]
        if head == "self" and info.cls is not None and len(chain) >= 2:
            return self._resolve_method(summary, info.cls, chain[1])
        if head in info.local_defs:
            qualname = info.local_defs[head]
            if qualname in summary.functions and len(chain) == 1:
                return Resolved("function", info.module, qualname)
            return None
        if head in info.bindings:
            return self.resolve_dotted(
                ".".join([info.bindings[head], *chain[1:]])
            )
        return self._resolve_in_module(summary, ".".join(chain))

    def resolve_callable(
        self, chain: tuple[str, ...], info: FunctionInfo
    ) -> Resolved | None:
        """Like :meth:`resolve_chain`, but a class resolves to ``__init__``."""
        resolved = self.resolve_chain(chain, info)
        if resolved is not None and resolved.kind == "class":
            summary = self.modules.get(resolved.module)
            if summary is not None:
                init = self._resolve_method(summary, resolved.qualname, "__init__")
                if init is not None:
                    return init
        return resolved

    # -- call edges + reachability -------------------------------------
    def edges(self) -> dict[str, set[str]]:
        """Resolved call edges: function key → set of callee keys."""
        if self._edges is None:
            self._edges = {}
            for key, info in self.functions.items():
                out: set[str] = set()
                for site in info.calls:
                    resolved = self.resolve_callable(site.chain, info)
                    if resolved is not None and resolved.kind == "function":
                        out.add(resolved.key)
                self._edges[key] = out
        return self._edges

    def reachable(self, roots: Iterable[str]) -> dict[str, str]:
        """BFS closure over call edges: ``{reached key: root key}``.

        The mapped value is the *first* root that reaches each function,
        which rules use to phrase "reachable from <entry point>"
        messages deterministically (roots are processed in given order).
        """
        edges = self.edges()
        origin: dict[str, str] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.functions and root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(edges.get(current, ())):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin
