"""Rule framework for the SWOPE static-analysis pass.

A *rule* is a named, registered check with a stable ``SWP###`` code, a
default severity, and a callable that inspects one parsed module and
yields :class:`Violation` objects. Rules register themselves with the
module-level :data:`RULES` registry via the :func:`rule` decorator; the
checker iterates the registry (optionally narrowed by ``--select`` /
``--ignore``) and applies every rule to every file.

Severities
----------
``ERROR`` violations gate CI (non-zero exit); ``WARNING`` violations are
reported but only fail the run under ``--fail-on-warning``. The special
pseudo-code ``SWP000`` (unused ``# noqa`` suppression) is emitted by the
checker itself, not by a registered rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.exceptions import AnalysisError, ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.checker import ModuleContext
    from repro.analysis.project import ProjectContext

__all__ = [
    "RULES",
    "ProjectRuleCheck",
    "Rule",
    "RuleCheck",
    "Severity",
    "UNUSED_SUPPRESSION",
    "Violation",
    "all_codes",
    "get_rule",
    "iter_rules",
    "project_rule",
    "rule",
]

#: Pseudo-code under which the checker reports unused suppressions.
UNUSED_SUPPRESSION = "SWP000"


class Severity(enum.Enum):
    """How a violation affects the exit status of an analysis run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a position in a file.

    ``snippet`` holds the stripped source line, which doubles as the
    position-drift-tolerant component of the baseline fingerprint (see
    :mod:`repro.analysis.baseline`).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: Severity
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Identity used by the ``--baseline`` ratchet.

        Deliberately excludes the line *number* so that unrelated edits
        above a baselined violation do not resurface it; includes the
        stripped line *text* so that the violation's own statement
        changing does.
        """
        return f"{self.path}::{self.rule}::{self.snippet}"

    def format_text(self) -> str:
        """The one-line human-readable rendering used by the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.column}:"
            f" {self.rule} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-reporter payload."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": str(self.severity),
            "message": self.message,
            "snippet": self.snippet,
        }


RuleCheck = Callable[["ModuleContext"], Iterable[Violation]]

#: A whole-program rule inspects the :class:`~repro.analysis.project.ProjectContext`
#: (call graph, taint summaries, every module) instead of one module.
ProjectRuleCheck = Callable[["ProjectContext"], Iterable[Violation]]


@dataclass(frozen=True)
class Rule:
    """A registered check: stable code, severity, scope note, callable.

    ``project`` distinguishes the two rule shapes: per-module rules
    (``check`` receives a :class:`~repro.analysis.checker.ModuleContext`
    and run on every analysed file) and whole-program rules (``check``
    receives a :class:`~repro.analysis.project.ProjectContext` and run
    once per analysis pass, only under ``--project``).
    """

    code: str
    name: str
    severity: Severity
    summary: str
    check: RuleCheck | ProjectRuleCheck
    #: Human-readable scope note shown by ``--list-rules`` (the check
    #: itself enforces its scope; this is documentation).
    scope: str = "src/repro"
    #: Whole-program rule: needs a ProjectContext, skipped per-module.
    project: bool = False

    def run(self, context: "ModuleContext") -> Iterator[Violation]:
        """Apply a per-module rule to one module (project rules skip)."""
        if self.project:
            return
        check = self.check
        yield from check(context)  # type: ignore[arg-type]

    def run_project(self, context: "ProjectContext") -> Iterator[Violation]:
        """Apply a whole-program rule to the project graph."""
        if not self.project:  # pragma: no cover - guarded by callers
            return
        check = self.check
        yield from check(context)  # type: ignore[arg-type]


#: The global rule registry, keyed by ``SWP###`` code, insertion-ordered.
RULES: dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    *,
    severity: Severity = Severity.ERROR,
    summary: str,
    scope: str = "src/repro",
) -> Callable[[RuleCheck], RuleCheck]:
    """Class/function decorator registering a check under ``code``.

    The decorated callable receives a
    :class:`~repro.analysis.checker.ModuleContext` and yields
    :class:`Violation` objects. Registration is idempotent per process
    but re-registering an existing code is a programming error.
    """
    if not (code.startswith("SWP") and code[3:].isdigit() and len(code) == 6):
        raise ParameterError(f"rule codes look like SWP###, got {code!r}")

    def decorate(check: RuleCheck) -> RuleCheck:
        if code in RULES:
            raise ParameterError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            check=check,
            scope=scope,
        )
        return check

    return decorate


def project_rule(
    code: str,
    name: str,
    *,
    severity: Severity = Severity.ERROR,
    summary: str,
    scope: str = "src/repro (whole-program)",
) -> Callable[[ProjectRuleCheck], ProjectRuleCheck]:
    """Like :func:`rule`, but registers a whole-program check.

    The decorated callable receives a
    :class:`~repro.analysis.project.ProjectContext` and yields
    :class:`Violation` objects anywhere in the project. Project rules
    run only under ``--project`` (per-module runs cannot build the call
    graph they need) and share the registry, ``--select``/``--ignore``,
    ``# noqa`` and baseline machinery with per-module rules.
    """
    if not (code.startswith("SWP") and code[3:].isdigit() and len(code) == 6):
        raise ParameterError(f"rule codes look like SWP###, got {code!r}")

    def decorate(check: ProjectRuleCheck) -> ProjectRuleCheck:
        if code in RULES:
            raise ParameterError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            check=check,
            scope=scope,
            project=True,
        )
        return check

    return decorate


def all_codes() -> list[str]:
    """Every registered rule code, sorted."""
    return sorted(RULES)


def get_rule(code: str) -> Rule:
    """Look up one rule; unknown codes raise :class:`AnalysisError`."""
    try:
        return RULES[code]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {code!r}; known rules: {', '.join(all_codes())}"
        ) from None


def iter_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """The registry narrowed by ``--select`` / ``--ignore`` code sets."""
    selected = set(select) if select is not None else set(RULES)
    ignored = set(ignore) if ignore is not None else set()
    for code in selected | ignored:
        if code != UNUSED_SUPPRESSION and code not in RULES:
            raise AnalysisError(
                f"unknown rule {code!r}; known rules: {', '.join(all_codes())}"
            )
    return [
        r for code, r in RULES.items() if code in selected and code not in ignored
    ]
