"""Census-like synthetic dataset registry (the paper's Table 2 analogues).

The paper evaluates on four public datasets — cdc-behavioral-risk,
census-american-housing (hus), census-american-population (pus), and enem —
after removing columns with support size above 1000. Those files are not
available offline, so this module builds deterministic synthetic analogues
that match each dataset's *column count* and reproduce, at a row count
scaled to a single-core machine, the statistical features the algorithms
are sensitive to:

* **entropy anchors** — columns whose entropy sits just above/below each
  filter threshold the paper sweeps (0.5–3.0 bits), both at a hair's
  distance (hard for the exact EntropyFilter) and at a comfortable margin;
* **top twins** — clusters of high-support columns whose entropies differ
  by a few thousandths of a bit around every top-k boundary the paper
  evaluates (k ∈ {1, 2, 4, 8, 10}); the tiny gap Δ is what makes the exact
  EntropyRank expensive and is common in real census extracts (many
  near-duplicate coding columns);
* **MI groups** — a designated target column plus noisy copies whose
  population mutual information is dialled (via
  :func:`repro.synth.correlation.retention_for_mi`) to put small gaps at
  the MI top-k boundaries and to straddle the MI filter thresholds
  (0.1–0.5 bits);
* **filler** — bulk columns with random supports and entropies.

Row counts are scaled versus the paper (see ``DatasetPlan.paper_rows``);
EXPERIMENTS.md discusses how that scaling affects measured speedup factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError
from repro.synth.correlation import noisy_copy, retention_for_mi
from repro.synth.distributions import (
    probabilities_with_entropy,
    sample_categorical,
)

__all__ = [
    "ColumnPlan",
    "DatasetPlan",
    "SyntheticDataset",
    "DATASETS",
    "build_plan",
    "generate",
    "load_dataset",
    "dataset_summary",
]


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnPlan:
    """How one synthetic column is generated.

    ``kind`` is one of ``"anchor"``, ``"twin"``, ``"mi_base"``,
    ``"mi_member"``, ``"filler"``. Marginal columns carry a
    ``target_entropy``; MI members instead carry the ``base`` column name
    and the ``retention`` of the noisy-copy channel (derived from
    ``target_mi`` at plan-build time).
    """

    name: str
    support_size: int
    kind: str
    target_entropy: float | None = None
    base: str | None = None
    retention: float | None = None
    target_mi: float | None = None


@dataclass(frozen=True)
class DatasetPlan:
    """Full recipe of one synthetic dataset."""

    key: str
    title: str
    num_rows: int
    paper_rows: int
    paper_columns: int
    seed: int
    columns: tuple[ColumnPlan, ...]
    mi_targets: tuple[str, ...]

    @property
    def num_columns(self) -> int:
        return len(self.columns)


@dataclass
class SyntheticDataset:
    """A generated dataset plus its recipe.

    Attributes
    ----------
    store:
        The encoded columnar data.
    plan:
        The generating plan (population-level entropy/MI targets per
        column; the empirical values on the finite sample deviate by
        sampling noise — ground truth for experiments is always computed
        on the realised data, never on the plan).
    mi_targets:
        Suggested target attributes for mutual-information queries (the
        MI group bases, whose MI landscape against the other columns is
        engineered — see the module docstring).
    """

    store: ColumnStore
    plan: DatasetPlan
    mi_targets: tuple[str, ...]

    def random_targets(self, count: int, seed: int = 0) -> tuple[str, ...]:
        """``count`` arbitrary columns to use as MI targets.

        The paper picks 20 random target columns per dataset. On these
        analogues, correlation is concentrated in the engineered MI
        groups, so a random target mostly sees a near-zero MI landscape
        — statistically valid, but it exercises the degenerate regime
        where every algorithm must sample close to N (Theorem 5 with
        I(α*_k) → 0). The experiment harness therefore defaults to the
        engineered targets and exposes this as ``target_mode="random"``.
        """
        if not 1 <= count <= self.store.num_attributes:
            raise ParameterError(
                f"count must be in [1, {self.store.num_attributes}], got {count}"
            )
        rng = np.random.default_rng(seed)
        picks = rng.choice(
            self.store.num_attributes, size=count, replace=False
        )
        names = self.store.attributes
        return tuple(names[i] for i in sorted(picks.tolist()))


# Twin clusters: gaps of 0.15 bits at every top-k boundary the paper
# sweeps (k = 1, 2, 4, 8, 10). The gap size is calibrated for the scaled
# row counts: small enough that the exact EntropyRank stopping rule
# (2λ + b ≤ Δ) cannot fire until the sample nearly exhausts the dataset,
# yet several times the realised estimator noise at SWOPE's much earlier
# stopping point (2λ + b ≤ ε·H̄_k ≈ 0.9 bits), so SWOPE still ranks the
# twins correctly. The entropies sit near the top of the u = 1000/800
# range, where the plug-in estimator's variance is lowest.
_TOP_TWIN_ENTROPIES_A = (9.30, 9.15, 9.00, 8.85, 8.70, 8.55)
_TOP_TWIN_ENTROPIES_B = (8.40, 8.25, 8.10, 7.95, 7.80)

# Ranked MI members: 0.1-bit gaps at the same k boundaries (same
# calibration logic: exact stopping needs 6λ + b' ≤ Δ = 0.1, forcing the
# sample to ~N; SWOPE stops at 6λ + b' ≤ ε·Ī_k ≈ 1.2 bits), and values
# large enough that SWOPE's relative stopping rule fires well before the
# sample exhausts the dataset (Theorem 5: cost ~ 1/I(α*_k)²).
_MI_RANKED = (
    4.50, 4.40, 4.30,
    3.90, 3.80,
    3.30, 3.00,
    2.70, 2.60,
    2.40, 2.30,
    1.90, 1.70, 1.50,
)
# Band members straddling the MI filter thresholds {0.1, ..., 0.5}.
_MI_BAND = (0.05, 0.08, 0.11, 0.15, 0.20, 0.28, 0.35, 0.45, 0.55)

# Entropy anchors per filter threshold: two at a hair's distance (the
# exact EntropyFilter must resolve these to the bitter end) and two at a
# comfortable margin.
_ANCHOR_THRESHOLDS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
_ANCHOR_OFFSETS = (-0.015, 0.015, -0.25, 0.25)

_MI_BASE_SUPPORT = 64
_MI_BASE_ENTROPY = 5.8


def _mi_group_columns(group_index: int, rng: np.random.Generator) -> list[ColumnPlan]:
    """One MI group: a base column and its ranked + band noisy copies."""
    base_name = f"mi_base_{group_index:02d}"
    base_probs = probabilities_with_entropy(_MI_BASE_SUPPORT, _MI_BASE_ENTROPY)
    columns = [
        ColumnPlan(
            name=base_name,
            support_size=_MI_BASE_SUPPORT,
            kind="mi_base",
            target_entropy=_MI_BASE_ENTROPY,
        )
    ]
    for rank, target_mi in enumerate([*_MI_RANKED, *_MI_BAND]):
        retention = retention_for_mi(base_probs, target_mi)
        columns.append(
            ColumnPlan(
                name=f"mi_m_{group_index:02d}_{rank:02d}",
                support_size=_MI_BASE_SUPPORT,
                kind="mi_member",
                base=base_name,
                retention=retention,
                target_mi=target_mi,
            )
        )
    return columns


def build_plan(
    key: str,
    title: str,
    num_rows: int,
    num_columns: int,
    paper_rows: int,
    paper_columns: int,
    seed: int,
    *,
    mi_groups: int = 2,
) -> DatasetPlan:
    """Construct a dataset plan with the engineered column mix.

    The fixed structural columns (anchors, twins, MI groups) are laid out
    first; the remaining budget becomes filler columns with seeded random
    supports and entropies. ``num_columns`` must leave room for the
    structural columns.
    """
    rng = np.random.default_rng(seed)
    columns: list[ColumnPlan] = []
    for t_index, threshold in enumerate(_ANCHOR_THRESHOLDS):
        for o_index, offset in enumerate(_ANCHOR_OFFSETS):
            target = max(0.05, threshold + offset)
            support = int(rng.integers(12, 49))
            columns.append(
                ColumnPlan(
                    name=f"ent_anchor_{t_index}{o_index}",
                    support_size=support,
                    kind="anchor",
                    target_entropy=target,
                )
            )
    for index, entropy in enumerate(_TOP_TWIN_ENTROPIES_A):
        columns.append(
            ColumnPlan(
                name=f"top_twin_a_{index:02d}",
                support_size=1000,
                kind="twin",
                target_entropy=entropy,
            )
        )
    for index, entropy in enumerate(_TOP_TWIN_ENTROPIES_B):
        columns.append(
            ColumnPlan(
                name=f"top_twin_b_{index:02d}",
                support_size=800,
                kind="twin",
                target_entropy=entropy,
            )
        )
    mi_targets: list[str] = []
    for group_index in range(mi_groups):
        group = _mi_group_columns(group_index, rng)
        mi_targets.append(group[0].name)
        columns.extend(group)
    if len(columns) > num_columns:
        raise ParameterError(
            f"dataset {key!r}: {num_columns} columns cannot hold the"
            f" {len(columns)} structural columns ({mi_groups} MI groups)"
        )
    filler_needed = num_columns - len(columns)
    for index in range(filler_needed):
        support = int(rng.integers(2, 201))
        max_entropy = float(np.log2(support))
        target = float(rng.uniform(0.2, 0.95)) * max_entropy
        columns.append(
            ColumnPlan(
                name=f"filler_{index:03d}",
                support_size=support,
                kind="filler",
                target_entropy=target,
            )
        )
    return DatasetPlan(
        key=key,
        title=title,
        num_rows=num_rows,
        paper_rows=paper_rows,
        paper_columns=paper_columns,
        seed=seed,
        columns=tuple(columns),
        mi_targets=tuple(mi_targets),
    )


# ----------------------------------------------------------------------
# Registry: the four Table 2 analogues
# ----------------------------------------------------------------------
DATASETS: dict[str, DatasetPlan] = {
    "cdc": build_plan(
        "cdc", "cdc-behavioral-risk (synthetic analogue)",
        num_rows=300_000, num_columns=100,
        paper_rows=3_753_802, paper_columns=100, seed=1101, mi_groups=2,
    ),
    "hus": build_plan(
        "hus", "census-american-housing (synthetic analogue)",
        num_rows=400_000, num_columns=107,
        paper_rows=14_768_919, paper_columns=107, seed=1102, mi_groups=2,
    ),
    "pus": build_plan(
        "pus", "census-american-population (synthetic analogue)",
        num_rows=500_000, num_columns=179,
        paper_rows=31_290_943, paper_columns=179, seed=1103, mi_groups=3,
    ),
    "enem": build_plan(
        "enem", "enem (synthetic analogue)",
        num_rows=500_000, num_columns=117,
        paper_rows=33_714_152, paper_columns=117, seed=1104, mi_groups=2,
    ),
}


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate(plan: DatasetPlan, *, scale: float = 1.0) -> SyntheticDataset:
    """Materialise a plan into a :class:`SyntheticDataset`.

    Parameters
    ----------
    plan:
        The dataset recipe.
    scale:
        Row-count multiplier (``0.1`` for a quick run, ``1.0`` default).
        The number of rows is floored at 1000 so bound formulas stay in a
        sane regime.
    """
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    num_rows = max(1000, int(round(plan.num_rows * scale)))
    rng = np.random.default_rng(plan.seed)
    columns: dict[str, np.ndarray] = {}
    supports: dict[str, int] = {}
    for column in plan.columns:
        if column.kind == "mi_member":
            assert column.base is not None and column.retention is not None
            base_values = columns[column.base]
            values = noisy_copy(rng, base_values, column.support_size, column.retention)
        else:
            assert column.target_entropy is not None
            probs = probabilities_with_entropy(
                column.support_size, column.target_entropy
            )
            values = sample_categorical(rng, probs, num_rows)
        columns[column.name] = values
        supports[column.name] = column.support_size
    store = ColumnStore(columns, support_sizes=supports)
    return SyntheticDataset(store=store, plan=plan, mi_targets=plan.mi_targets)


_GENERATED_CACHE: dict[tuple[str, float], SyntheticDataset] = {}


def load_dataset(key: str, *, scale: float = 1.0, cached: bool = True) -> SyntheticDataset:
    """Load (and memoise) one of the registry datasets.

    Parameters
    ----------
    key:
        One of ``"cdc"``, ``"hus"``, ``"pus"``, ``"enem"``.
    scale:
        Row-count multiplier passed to :func:`generate`.
    cached:
        Keep the generated dataset in an in-process cache so repeated
        experiment/benchmark calls do not regenerate it.
    """
    if key not in DATASETS:
        raise ParameterError(
            f"unknown dataset {key!r}; available: {sorted(DATASETS)}"
        )
    cache_key = (key, float(scale))
    if cached and cache_key in _GENERATED_CACHE:
        return _GENERATED_CACHE[cache_key]
    dataset = generate(DATASETS[key], scale=scale)
    if cached:
        _GENERATED_CACHE[cache_key] = dataset
    return dataset


def dataset_summary(keys: Iterable[str] | None = None, *, scale: float = 1.0) -> list[dict[str, object]]:
    """Rows of the Table 2 analogue: per-dataset shapes, ours vs. paper.

    Purely plan-based (no generation), except row counts are scaled the
    same way :func:`generate` scales them.
    """
    rows = []
    for key in keys if keys is not None else sorted(DATASETS):
        plan = DATASETS[key]
        rows.append(
            {
                "dataset": key,
                "title": plan.title,
                "rows": max(1000, int(round(plan.num_rows * scale))),
                "columns": plan.num_columns,
                "paper_rows": plan.paper_rows,
                "paper_columns": plan.paper_columns,
                "mi_targets": len(plan.mi_targets),
            }
        )
    return rows
