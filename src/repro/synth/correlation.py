"""Correlated column generation with controllable mutual information.

The mutual-information experiments need candidate columns whose MI against
a target column spans and straddles the paper's thresholds (0.1–0.5 bits).
We generate them with the *noisy copy* channel: given a base column ``X``
over support ``u``,

    ``Y = X`` with probability ``r`` (retention), else ``Y ~ Uniform[0, u)``

independently per record. The joint distribution of ``(X, Y)`` is then
fully analytic — ``P(Y=j | X=i) = r·1[i=j] + (1-r)/u`` — so the population
MI is computable in closed form (:func:`analytic_noisy_copy_mi`) and is
continuous and strictly increasing in ``r`` (for a non-degenerate base),
which lets :func:`retention_for_mi` dial a target MI by bisection.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.estimators import entropy_from_probabilities
from repro.exceptions import ParameterError

__all__ = [
    "noisy_copy",
    "analytic_noisy_copy_mi",
    "retention_for_mi",
]


def _check_retention(retention: float) -> float:
    if not 0.0 <= retention <= 1.0:
        raise ParameterError(f"retention must be in [0, 1], got {retention}")
    return float(retention)


def noisy_copy(
    rng: np.random.Generator,
    base: np.ndarray,
    support_size: int,
    retention: float,
) -> np.ndarray:
    """Generate ``Y`` from ``X = base`` through the noisy-copy channel.

    Parameters
    ----------
    rng:
        Randomness source.
    base:
        Encoded base column with values in ``[0, support_size)``.
    support_size:
        Support ``u`` shared by input and output.
    retention:
        Probability ``r`` of copying the base value; ``1 - r`` of an
        independent uniform draw.
    """
    retention = _check_retention(retention)
    base = np.asarray(base)
    if base.size and (int(base.min()) < 0 or int(base.max()) >= support_size):
        raise ParameterError(
            f"base values must lie in [0, {support_size}), got range"
            f" [{base.min()}, {base.max()}]"
        )
    keep = rng.random(base.shape[0]) < retention
    noise = rng.integers(0, support_size, size=base.shape[0], dtype=np.int64)
    return np.where(keep, base.astype(np.int64), noise)


def analytic_noisy_copy_mi(
    base_probabilities: np.ndarray, retention: float
) -> float:
    """Population MI (bits) between ``X ~ p`` and its noisy copy ``Y``.

    Uses ``I(X;Y) = H(Y) - H(Y|X)`` with

    * ``P(Y=j) = r·p_j + (1-r)/u``;
    * ``H(Y|X=i)`` the entropy of the row ``r·1[i=j] + (1-r)/u``, which
      depends on ``i`` only through the shared shape (one cell of mass
      ``r + (1-r)/u``, the other ``u-1`` cells of mass ``(1-r)/u``), so
      ``H(Y|X)`` is a single row entropy.
    """
    retention = _check_retention(retention)
    p = np.asarray(base_probabilities, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ParameterError("base probabilities must be a non-empty 1-D vector")
    if (p < 0).any() or not math.isclose(float(p.sum()), 1.0, abs_tol=1e-9):
        raise ParameterError("base probabilities must be non-negative and sum to 1")
    u = p.size
    if u == 1:
        return 0.0
    marginal_y = retention * p + (1.0 - retention) / u
    h_y = entropy_from_probabilities(marginal_y)
    row = np.full(u, (1.0 - retention) / u)
    row[0] += retention
    h_y_given_x = entropy_from_probabilities(row)
    return max(0.0, h_y - h_y_given_x)


def retention_for_mi(
    base_probabilities: np.ndarray,
    target_mi: float,
    *,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Solve for the retention ``r`` giving a target noisy-copy MI.

    The achievable range is ``[0, I_max]`` where ``I_max`` is the MI at
    ``r = 1`` (a perfect copy: ``I = H(X)``). Values outside the range
    raise :class:`~repro.exceptions.ParameterError`.
    """
    if target_mi < 0:
        raise ParameterError(f"target MI must be >= 0, got {target_mi}")
    max_mi = analytic_noisy_copy_mi(base_probabilities, 1.0)
    if target_mi > max_mi + 1e-9:
        raise ParameterError(
            f"target MI {target_mi} exceeds the maximum {max_mi:.6f} achievable"
            " by a perfect copy of this base distribution"
        )
    if target_mi <= 0.0:
        return 0.0
    low, high = 0.0, 1.0
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        mi = analytic_noisy_copy_mi(base_probabilities, mid)
        if abs(mi - target_mi) <= tolerance:
            return mid
        if mi < target_mi:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0
