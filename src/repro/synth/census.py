"""Census-shaped workload scenarios with provenance manifests.

The registry in :mod:`repro.synth.datasets` mirrors the paper's evaluation
comfort zone: clean parametric columns, supports safely under the u = 1000
preprocessing cutoff. Production survey extracts are not like that — they
carry Zipf-skewed high-cardinality identifier columns (surnames, street
names, ZIP codes), correlated demographic groups, missing values, and
keying noise. This module generates those shapes deterministically:

* **scenario specs** (:class:`CensusScenario`) declare every column as one
  of four families — ``zipf`` (power-law identifiers), ``entropy``
  (marginal with a prescribed entropy), ``correlated_base`` /
  ``correlated`` (a noisy-copy group with population MI dialled via
  :func:`repro.synth.correlation.retention_for_mi`) — plus per-column
  missingness and categorical-noise corruption rates and the query batch
  the scenario is meant to answer;
* **generation** (:func:`generate_census`) materialises a spec into a
  :class:`~repro.data.column_store.ColumnStore`. Missing values become a
  dedicated sentinel code ``u`` (the declared support grows by one), so a
  missing-laden column stays one well-posed categorical attribute instead
  of exploding into per-row NaN codes;
* **provenance manifests**: every generated dataset carries a
  deterministic JSON manifest (schema version, scenario, seed, scale,
  rows, per-column support/distribution summary, sha256 of the encoded
  columns). The sha256 is :func:`repro.durability.checkpoint.store_fingerprint`,
  the same identity the checkpoint and plan-cache layers key on, so a
  manifest pins exactly the dataset a benchmark, golden trace, or cache
  partition saw. Manifests are written via :mod:`repro.durability.atomic`.

The experiments layer (:mod:`repro.experiments.workloads`) turns these
scenarios into a second accuracy/performance track beside the paper
figures.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from repro.data.column_store import ColumnStore
from repro.data.describe import profile_attribute
from repro.durability.atomic import atomic_write_text
from repro.durability.checkpoint import store_fingerprint
from repro.exceptions import (
    DataFormatError,
    ManifestError,
    ManifestMismatchError,
    ParameterError,
)
from repro.synth.correlation import noisy_copy, retention_for_mi
from repro.synth.distributions import (
    probabilities_with_entropy,
    sample_categorical,
    zipf_probabilities,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "COLUMN_FAMILIES",
    "CensusColumnSpec",
    "CensusScenario",
    "CensusDataset",
    "SCENARIOS",
    "get_scenario",
    "generate_census",
    "manifest_json",
    "write_manifest",
    "load_manifest",
    "verify_manifest",
    "regenerate_from_manifest",
]

#: Schema tag of the provenance manifest (the ``stage1_synth_v1`` pattern).
MANIFEST_SCHEMA_VERSION = "census_scenario_v1"

#: Generator families a column spec may use.
COLUMN_FAMILIES = ("zipf", "entropy", "correlated_base", "correlated")

#: Row floor applied after scaling, so bound formulas stay in a sane regime.
_MIN_ROWS = 512


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CensusColumnSpec:
    """How one census-shaped column is generated.

    ``family`` selects the marginal generator: ``"zipf"`` needs
    ``zipf_exponent``, ``"entropy"`` and ``"correlated_base"`` need
    ``target_entropy``, and ``"correlated"`` names a preceding ``base``
    column plus a population ``target_mi`` (the noisy-copy ``retention``
    is solved at registry-build time and recorded here).

    Corruption is applied after generation, in order: first categorical
    noise (each record independently replaced by a uniform draw over the
    base domain with probability ``noise_rate``), then missingness (each
    record independently replaced by the sentinel code ``support_size``
    with probability ``missing_rate``). A missing-capable column
    therefore declares support ``support_size + 1``.
    """

    name: str
    family: str
    support_size: int
    zipf_exponent: float | None = None
    target_entropy: float | None = None
    base: str | None = None
    target_mi: float | None = None
    retention: float | None = None
    missing_rate: float = 0.0
    noise_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.family not in COLUMN_FAMILIES:
            raise ParameterError(
                f"column {self.name!r}: unknown family {self.family!r};"
                f" expected one of {COLUMN_FAMILIES}"
            )
        if self.support_size < 2:
            raise ParameterError(
                f"column {self.name!r}: support size must be >= 2,"
                f" got {self.support_size}"
            )
        if not 0.0 <= self.missing_rate < 1.0:
            raise ParameterError(
                f"column {self.name!r}: missing_rate must be in [0, 1),"
                f" got {self.missing_rate}"
            )
        if not 0.0 <= self.noise_rate < 1.0:
            raise ParameterError(
                f"column {self.name!r}: noise_rate must be in [0, 1),"
                f" got {self.noise_rate}"
            )
        if self.family == "zipf":
            if self.zipf_exponent is None:
                raise ParameterError(
                    f"column {self.name!r}: a zipf column needs zipf_exponent"
                )
        elif self.family in ("entropy", "correlated_base"):
            if self.target_entropy is None:
                raise ParameterError(
                    f"column {self.name!r}: an {self.family} column needs"
                    " target_entropy"
                )
        else:  # correlated
            if self.base is None or self.target_mi is None:
                raise ParameterError(
                    f"column {self.name!r}: a correlated column needs"
                    " base and target_mi"
                )

    @property
    def declared_support(self) -> int:
        """The support the generated store declares (+1 for the sentinel)."""
        return self.support_size + (1 if self.missing_rate > 0.0 else 0)

    @property
    def missing_code(self) -> int | None:
        """The sentinel code missing records carry (``None`` if never missing)."""
        return self.support_size if self.missing_rate > 0.0 else None


@dataclass(frozen=True)
class CensusScenario:
    """One census workload: columns, corruption, and the query batch.

    ``queries`` holds JSON-shaped query-spec mappings (the
    :meth:`repro.core.plan.QuerySpec.from_dict` dialect) so a scenario
    stays serialisable and :mod:`repro.synth` stays below the planning
    layer; :mod:`repro.experiments.workloads` compiles them into specs.
    """

    key: str
    title: str
    description: str
    num_rows: int
    columns: tuple[CensusColumnSpec, ...]
    queries: tuple[Mapping[str, object], ...]
    mi_targets: tuple[str, ...] = ()

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> CensusColumnSpec:
        """The spec of column ``name`` (:class:`ParameterError` if unknown)."""
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise ParameterError(
            f"scenario {self.key!r} has no column {name!r}"
        )


@dataclass
class CensusDataset:
    """A generated census dataset: the store, its recipe, and its manifest."""

    store: ColumnStore
    scenario: CensusScenario
    seed: int
    scale: float
    manifest: dict[str, object]

    @property
    def fingerprint(self) -> str:
        """The manifest's sha256 (= the checkpoint/cache store fingerprint)."""
        return str(self.manifest["sha256"])


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _build_scenario(
    key: str,
    title: str,
    description: str,
    num_rows: int,
    columns: tuple[CensusColumnSpec, ...],
    queries: tuple[Mapping[str, object], ...],
    mi_targets: tuple[str, ...] = (),
) -> CensusScenario:
    """Validate a scenario and solve correlated columns' retentions.

    Retention is solved here, against the *population* base distribution,
    so generation stays a pure function of (scenario, seed, scale) with
    no per-run bisection.
    """
    seen: set[str] = set()
    base_probabilities: dict[str, np.ndarray] = {}
    resolved: list[CensusColumnSpec] = []
    for spec in columns:
        if spec.name in seen:
            raise ParameterError(
                f"scenario {key!r}: duplicate column name {spec.name!r}"
            )
        seen.add(spec.name)
        if spec.family == "zipf":
            assert spec.zipf_exponent is not None
            base_probabilities[spec.name] = zipf_probabilities(
                spec.support_size, spec.zipf_exponent
            )
        elif spec.family in ("entropy", "correlated_base"):
            assert spec.target_entropy is not None
            base_probabilities[spec.name] = probabilities_with_entropy(
                spec.support_size, spec.target_entropy
            )
        else:  # correlated
            assert spec.base is not None and spec.target_mi is not None
            if spec.base not in base_probabilities:
                raise ParameterError(
                    f"scenario {key!r}: column {spec.name!r} names base"
                    f" {spec.base!r}, which must be declared earlier"
                )
            probs = base_probabilities[spec.base]
            if probs.size != spec.support_size:
                raise ParameterError(
                    f"scenario {key!r}: column {spec.name!r} declares support"
                    f" {spec.support_size}, but base {spec.base!r} has"
                    f" support {probs.size} (noisy copies share the domain)"
                )
            spec = replace(
                spec, retention=retention_for_mi(probs, spec.target_mi)
            )
        resolved.append(spec)
    for target in mi_targets:
        if target not in seen:
            raise ParameterError(
                f"scenario {key!r}: MI target {target!r} is not a column"
            )
    return CensusScenario(
        key=key,
        title=title,
        description=description,
        num_rows=num_rows,
        columns=tuple(resolved),
        queries=queries,
        mi_targets=mi_targets,
    )


def _zipf(name: str, support: int, exponent: float, **corruption: float) -> CensusColumnSpec:
    return CensusColumnSpec(
        name=name, family="zipf", support_size=support,
        zipf_exponent=exponent, **corruption,
    )


def _ent(name: str, support: int, entropy: float, **corruption: float) -> CensusColumnSpec:
    return CensusColumnSpec(
        name=name, family="entropy", support_size=support,
        target_entropy=entropy, **corruption,
    )


def _base(name: str, support: int, entropy: float) -> CensusColumnSpec:
    return CensusColumnSpec(
        name=name, family="correlated_base", support_size=support,
        target_entropy=entropy,
    )


def _corr(name: str, base: str, support: int, mi: float, **corruption: float) -> CensusColumnSpec:
    return CensusColumnSpec(
        name=name, family="correlated", support_size=support,
        base=base, target_mi=mi, **corruption,
    )


#: The census workload catalogue. Keys are stable identifiers used by
#: manifests, the CLI, CI, and golden artifacts — renaming one is a
#: manifest schema change.
SCENARIOS: dict[str, CensusScenario] = {
    "skewed": _build_scenario(
        "skewed",
        "Zipf-skewed identifiers",
        "High-cardinality power-law columns (surname/street/ZIP-like)"
        " straddling the u = 1000 preprocessing cutoff, plus moderate"
        " demographic attributes; entropy top-k and filter over the"
        " surviving columns.",
        num_rows=60_000,
        columns=(
            _zipf("surname", 4000, 1.07),
            _zipf("street", 2500, 0.9),
            _zipf("given_name", 900, 1.0),
            _zipf("zipcode", 800, 0.6),
            _zipf("city", 400, 1.1),
            _zipf("occupation", 300, 0.8),
            _ent("age", 96, 5.9),
            _ent("industry", 120, 5.2),
            _ent("income_band", 40, 4.1),
            _ent("education", 24, 3.4),
            _ent("household_size", 16, 2.2),
        ),
        queries=(
            {"kind": "topk-entropy", "k": 3, "name": "skew_top3"},
            {"kind": "filter-entropy", "threshold": 4.0, "name": "skew_ge4"},
        ),
    ),
    "correlated": _build_scenario(
        "correlated",
        "Correlated demographic group",
        "An ancestry-style base column with noisy-copy members whose"
        " population MI spans 0.05-2.5 bits, plus independent filler;"
        " every support is below the cutoff, so the manifest sha256"
        " doubles as the plan-cache partition fingerprint.",
        num_rows=40_000,
        columns=(
            _base("ancestry", 32, 4.4),
            _corr("birth_region", "ancestry", 32, 2.5),
            _corr("language", "ancestry", 32, 1.8),
            _corr("citizenship", "ancestry", 32, 1.2),
            _corr("dialect", "ancestry", 32, 0.8),
            _corr("cuisine", "ancestry", 32, 0.45),
            _corr("music_pref", "ancestry", 32, 0.2),
            _corr("sports_pref", "ancestry", 32, 0.05),
            _ent("age", 96, 5.9),
            _ent("income", 200, 6.1),
            _ent("education", 24, 3.3),
        ),
        queries=(
            {"kind": "topk-mi", "target": "ancestry", "k": 3, "name": "corr_mi_top3"},
            {"kind": "filter-mi", "target": "ancestry", "threshold": 0.3, "name": "corr_mi_ge03"},
            {"kind": "topk-entropy", "k": 2, "name": "corr_ent_top2"},
        ),
        mi_targets=("ancestry",),
    ),
    "noisy": _build_scenario(
        "noisy",
        "Missing and noised survey extract",
        "Realistic corruption: per-column missingness from 5% to 60%"
        " (sentinel-coded), categorical keying noise up to 15%, one"
        " over-cutoff identifier, and a noised correlated pair.",
        num_rows=40_000,
        columns=(
            _zipf("phone_area", 1400, 0.8, missing_rate=0.05),
            _base("employer_sector", 48, 4.6),
            _corr("occupation_code", "employer_sector", 48, 1.5,
                  missing_rate=0.15, noise_rate=0.1),
            _zipf("occupation_text", 600, 0.9, missing_rate=0.25, noise_rate=0.05),
            _ent("income", 150, 5.5, missing_rate=0.6),
            _ent("age", 96, 5.9, noise_rate=0.05),
            _ent("education", 24, 3.4, missing_rate=0.05, noise_rate=0.15),
        ),
        queries=(
            {"kind": "topk-entropy", "k": 3, "name": "noisy_top3"},
            {"kind": "filter-entropy", "threshold": 3.0, "name": "noisy_ge3"},
            {"kind": "topk-mi", "target": "employer_sector", "k": 2, "name": "noisy_mi_top2"},
        ),
        mi_targets=("employer_sector",),
    ),
    "threshold": _build_scenario(
        "threshold",
        "Supports straddling the drop cutoff",
        "Columns at u in {998, 1000, 1001, 5000} around the paper's"
        " u = 1000 preprocessing cutoff, plus mid-support attributes;"
        " exercises the drop boundary and the bias term b(alpha) on"
        " kept near-threshold columns.",
        num_rows=50_000,
        columns=(
            _zipf("near_low", 998, 0.4),
            _zipf("at_cut", 1000, 0.4),
            _zipf("just_over", 1001, 0.4),
            _zipf("far_over", 5000, 0.7),
            _ent("mid_a", 128, 6.5),
            _ent("mid_b", 64, 5.0),
            _ent("mid_c", 256, 7.0),
        ),
        queries=(
            {"kind": "topk-entropy", "k": 3, "name": "thr_top3"},
            {"kind": "filter-entropy", "threshold": 6.0, "name": "thr_ge6"},
        ),
    ),
}


def get_scenario(key: str) -> CensusScenario:
    """Look up a registry scenario (:class:`ParameterError` if unknown)."""
    try:
        return SCENARIOS[key]
    except KeyError:
        raise ParameterError(
            f"unknown census scenario {key!r}; available: {sorted(SCENARIOS)}"
        ) from None


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _scenario_salt(key: str) -> int:
    """A stable per-scenario seed component (first 4 sha256 bytes)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:4], "big"
    )


def generate_census(
    scenario: Union[str, CensusScenario], *, seed: int = 0, scale: float = 1.0
) -> CensusDataset:
    """Materialise a scenario into a store plus its provenance manifest.

    Generation is a pure function of ``(scenario key, seed, scale)``:
    each column draws from its own child generator seeded by
    ``[seed, scenario salt, column index]``, so adding or reordering
    *later* columns never perturbs earlier ones, and the same triple
    reproduces the dataset (and therefore the manifest) byte for byte.

    Parameters
    ----------
    scenario:
        A registry key or a :class:`CensusScenario`.
    seed:
        Dataset seed (>= 0).
    scale:
        Row-count multiplier; rows are floored at 512.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if seed < 0:
        raise ParameterError(f"seed must be >= 0, got {seed}")
    if scale <= 0:
        raise ParameterError(f"scale must be > 0, got {scale}")
    num_rows = max(_MIN_ROWS, int(round(scenario.num_rows * scale)))
    salt = _scenario_salt(scenario.key)
    clean: dict[str, np.ndarray] = {}
    stored: dict[str, np.ndarray] = {}
    supports: dict[str, int] = {}
    realized_noise: dict[str, float] = {}
    realized_missing: dict[str, float] = {}
    for index, spec in enumerate(scenario.columns):
        rng = np.random.default_rng([seed, salt, index])
        if spec.family == "correlated":
            assert spec.base is not None and spec.retention is not None
            values = noisy_copy(
                rng, clean[spec.base], spec.support_size, spec.retention
            )
        elif spec.family == "zipf":
            assert spec.zipf_exponent is not None
            probs = zipf_probabilities(spec.support_size, spec.zipf_exponent)
            values = sample_categorical(rng, probs, num_rows)
        else:
            assert spec.target_entropy is not None
            probs = probabilities_with_entropy(
                spec.support_size, spec.target_entropy
            )
            values = sample_categorical(rng, probs, num_rows)
        # Children copy the *clean* base, so a base's own corruption does
        # not leak sentinel codes into its noisy copies.
        clean[spec.name] = values
        corrupted = values
        noise_fraction = 0.0
        if spec.noise_rate > 0.0:
            mask = rng.random(num_rows) < spec.noise_rate
            draws = rng.integers(
                0, spec.support_size, size=num_rows, dtype=np.int64
            )
            corrupted = np.where(mask, draws, corrupted)
            noise_fraction = float(mask.mean())
        missing_fraction = 0.0
        if spec.missing_rate > 0.0:
            mask = rng.random(num_rows) < spec.missing_rate
            corrupted = np.where(mask, np.int64(spec.support_size), corrupted)
            missing_fraction = float(mask.mean())
        stored[spec.name] = np.asarray(corrupted, dtype=np.int64)
        supports[spec.name] = spec.declared_support
        realized_noise[spec.name] = noise_fraction
        realized_missing[spec.name] = missing_fraction
    store = ColumnStore(stored, support_sizes=supports)
    manifest = _build_manifest(
        store, scenario, seed, scale, realized_noise, realized_missing
    )
    return CensusDataset(
        store=store, scenario=scenario, seed=seed, scale=float(scale),
        manifest=manifest,
    )


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
_MANIFEST_REQUIRED_KEYS = (
    "schema_version", "scenario", "seed", "scale", "num_rows",
    "num_columns", "sha256", "columns",
)


def _build_manifest(
    store: ColumnStore,
    scenario: CensusScenario,
    seed: int,
    scale: float,
    realized_noise: Mapping[str, float],
    realized_missing: Mapping[str, float],
) -> dict[str, object]:
    columns: list[dict[str, object]] = []
    for spec in scenario.columns:
        profile = profile_attribute(store, spec.name)
        columns.append(
            {
                "name": spec.name,
                "family": spec.family,
                "support_size": profile.support_size,
                "base_support": spec.support_size,
                "missing_code": spec.missing_code,
                "observed_values": profile.observed_values,
                "entropy": round(profile.entropy, 6),
                "top_share": round(profile.top_share, 6),
                "zipf_exponent": spec.zipf_exponent,
                "target_entropy": spec.target_entropy,
                "base": spec.base,
                "target_mi": spec.target_mi,
                "retention": (
                    None if spec.retention is None else round(spec.retention, 9)
                ),
                "missing_rate": spec.missing_rate,
                "noise_rate": spec.noise_rate,
                "realized_missing_rate": round(realized_missing[spec.name], 6),
                "realized_noise_rate": round(realized_noise[spec.name], 6),
            }
        )
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "scenario": scenario.key,
        "title": scenario.title,
        "seed": int(seed),
        "scale": float(scale),
        "num_rows": store.num_rows,
        "num_columns": store.num_attributes,
        "sha256": store_fingerprint(store),
        "columns": columns,
    }


def manifest_json(manifest: Mapping[str, object]) -> str:
    """The canonical byte representation of a manifest.

    Sorted keys, two-space indentation, trailing newline — goldens and
    determinism tests compare this string (and its UTF-8 bytes) directly.
    """
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(manifest: Mapping[str, object], path: Union[str, Path]) -> Path:
    """Durably write a manifest (atomic write-rename); returns the path."""
    return atomic_write_text(path, manifest_json(manifest))


def load_manifest(path: Union[str, Path]) -> dict[str, object]:
    """Read and structurally validate a manifest file.

    Raises
    ------
    DataFormatError
        If the file cannot be read or is not valid JSON.
    ManifestError
        If it is not a manifest object, misses required keys, or carries
        an unknown schema version.
    """
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataFormatError(f"cannot read manifest {source}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{source} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ManifestError(f"{source}: a manifest must be a JSON object")
    missing = [key for key in _MANIFEST_REQUIRED_KEYS if key not in payload]
    if missing:
        raise ManifestError(f"{source}: manifest misses keys {missing}")
    version = payload["schema_version"]
    if version != MANIFEST_SCHEMA_VERSION:
        raise ManifestError(
            f"{source}: unknown manifest schema {version!r};"
            f" this build reads {MANIFEST_SCHEMA_VERSION!r}"
        )
    if not isinstance(payload["columns"], list):
        raise ManifestError(f"{source}: 'columns' must be a list")
    return payload


def verify_manifest(
    manifest: Mapping[str, object], store: ColumnStore
) -> None:
    """Check that ``store`` is exactly the dataset ``manifest`` describes.

    Compares row count, the ordered column/support schema, and finally
    the sha256 fingerprint of the encoded columns. Raises
    :class:`~repro.exceptions.ManifestMismatchError` on the first
    difference, with a message naming what diverged.
    """
    if int(str(manifest["num_rows"])) != store.num_rows:
        raise ManifestMismatchError(
            f"manifest records {manifest['num_rows']} rows,"
            f" store has {store.num_rows}"
        )
    entries = manifest["columns"]
    assert isinstance(entries, list)
    names = tuple(str(entry["name"]) for entry in entries)
    if names != store.attributes:
        raise ManifestMismatchError(
            f"manifest columns {names} differ from store columns"
            f" {store.attributes}"
        )
    for entry in entries:
        name = str(entry["name"])
        declared = int(str(entry["support_size"]))
        if declared != store.support_size(name):
            raise ManifestMismatchError(
                f"manifest declares support {declared} for {name!r},"
                f" store has {store.support_size(name)}"
            )
    expected = str(manifest["sha256"])
    actual = store_fingerprint(store)
    if expected != actual:
        raise ManifestMismatchError(
            f"manifest sha256 {expected[:12]}... does not match the"
            f" store's {actual[:12]}... — not the manifested dataset"
        )


def regenerate_from_manifest(manifest: Mapping[str, object]) -> CensusDataset:
    """Re-run generation from a manifest's recorded (scenario, seed, scale).

    Verifies the regenerated store against the manifest before returning,
    so a successful call proves the manifest round-trips: the recorded
    triple still produces the exact bytes it fingerprints.

    Raises
    ------
    ManifestError
        If the recorded scenario is not in the registry.
    ManifestMismatchError
        If regeneration no longer reproduces the manifested dataset.
    """
    key = str(manifest["scenario"])
    if key not in SCENARIOS:
        raise ManifestError(
            f"manifest names scenario {key!r}, which is not in the registry"
        )
    dataset = generate_census(
        key, seed=int(str(manifest["seed"])), scale=float(str(manifest["scale"]))
    )
    verify_manifest(manifest, dataset.store)
    return dataset
