"""Categorical distribution builders with controllable entropy.

The synthetic census-like datasets (see :mod:`repro.synth.datasets`) need
columns whose *empirical entropy* lands near prescribed values — the filter
experiments sweep thresholds from 0.5 to 3.0 bits and need attributes close
to and far from each threshold, and the top-k experiments need clusters of
columns with nearly identical entropies. This module provides:

* classic families — uniform, Zipf, geometric, head-plus-uniform mixtures;
* :func:`probabilities_with_entropy` — solve for a distribution over a
  given support whose Shannon entropy matches a target, by monotone binary
  search over the mixture weight of a head-plus-uniform family (its entropy
  sweeps continuously from 0 to ``log2(u)``);
* :func:`sample_categorical` — fast vectorised inverse-CDF sampling.

Everything is pure NumPy and deterministic given a seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.estimators import entropy_from_probabilities
from repro.exceptions import ParameterError

__all__ = [
    "uniform_probabilities",
    "zipf_probabilities",
    "geometric_probabilities",
    "head_mixture_probabilities",
    "probabilities_with_entropy",
    "sample_categorical",
]


def _check_support(support_size: int) -> int:
    if support_size < 1:
        raise ParameterError(f"support size must be >= 1, got {support_size}")
    return int(support_size)


def uniform_probabilities(support_size: int) -> np.ndarray:
    """The uniform distribution over ``support_size`` values (max entropy)."""
    u = _check_support(support_size)
    return np.full(u, 1.0 / u)


def zipf_probabilities(support_size: int, exponent: float) -> np.ndarray:
    """Zipf/power-law probabilities ``p_i ∝ (i + 1)^(-exponent)``.

    ``exponent = 0`` gives the uniform distribution; larger exponents skew
    mass toward the first values and lower the entropy.
    """
    u = _check_support(support_size)
    if exponent < 0:
        raise ParameterError(f"zipf exponent must be >= 0, got {exponent}")
    weights = np.arange(1, u + 1, dtype=np.float64) ** (-exponent)
    return weights / weights.sum()


def geometric_probabilities(support_size: int, ratio: float) -> np.ndarray:
    """Truncated geometric probabilities ``p_i ∝ ratio^i``.

    ``ratio`` close to 1 approaches uniform; smaller ratios skew hard.
    """
    u = _check_support(support_size)
    if not 0.0 < ratio <= 1.0:
        raise ParameterError(f"geometric ratio must be in (0, 1], got {ratio}")
    weights = ratio ** np.arange(u, dtype=np.float64)
    return weights / weights.sum()


def head_mixture_probabilities(support_size: int, spread: float) -> np.ndarray:
    """Mixture of a point mass on value 0 and the uniform distribution.

    ``p_0 = (1 - spread) + spread/u`` and ``p_i = spread/u`` for ``i > 0``.
    Entropy increases continuously and strictly from 0 (``spread = 0``) to
    ``log2(u)`` (``spread = 1``), which makes this the family of choice for
    hitting entropy targets by binary search.
    """
    u = _check_support(support_size)
    if not 0.0 <= spread <= 1.0:
        raise ParameterError(f"spread must be in [0, 1], got {spread}")
    p = np.full(u, spread / u)
    p[0] += 1.0 - spread
    return p


def probabilities_with_entropy(
    support_size: int,
    target_entropy: float,
    *,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> np.ndarray:
    """A distribution over ``support_size`` values with the given entropy.

    Solves ``H(head_mixture(u, spread)) = target_entropy`` for ``spread``
    by bisection; the mapping is continuous and strictly increasing, so the
    solution is unique.

    Parameters
    ----------
    support_size:
        Number of distinct values ``u``.
    target_entropy:
        Desired Shannon entropy in bits; must lie in ``[0, log2(u)]``.
    tolerance:
        Absolute entropy tolerance of the returned distribution.
    max_iterations:
        Bisection iteration cap (the interval halves each step, so 200 is
        far beyond float64 resolution; the cap only guards malformed
        tolerances).
    """
    u = _check_support(support_size)
    max_entropy = math.log2(u) if u > 1 else 0.0
    if not 0.0 <= target_entropy <= max_entropy + 1e-12:
        raise ParameterError(
            f"target entropy {target_entropy} outside [0, {max_entropy:.6f}]"
            f" for support size {u}"
        )
    if u == 1 or target_entropy <= 0.0:
        return head_mixture_probabilities(u, 0.0)
    if target_entropy >= max_entropy:
        return uniform_probabilities(u)
    low, high = 0.0, 1.0
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        entropy = entropy_from_probabilities(head_mixture_probabilities(u, mid))
        if abs(entropy - target_entropy) <= tolerance:
            break
        if entropy < target_entropy:
            low = mid
        else:
            high = mid
    return head_mixture_probabilities(u, (low + high) / 2.0)


def sample_categorical(
    rng: np.random.Generator, probabilities: np.ndarray, size: int
) -> np.ndarray:
    """Draw ``size`` i.i.d. categorical values by vectorised inverse CDF.

    Equivalent to ``rng.choice(u, size, p=probabilities)`` but considerably
    faster for large ``size`` (one ``searchsorted`` over a precomputed
    CDF). Returns an int64 array of codes in ``[0, u)``.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ParameterError("probabilities must be a non-empty 1-D vector")
    if size < 0:
        raise ParameterError(f"size must be >= 0, got {size}")
    if (p < 0).any() or not math.isclose(float(p.sum()), 1.0, abs_tol=1e-9):
        raise ParameterError("probabilities must be non-negative and sum to 1")
    cdf = np.cumsum(p)
    cdf[-1] = 1.0  # guard rounding so searchsorted never returns u
    draws = rng.random(size)
    return np.searchsorted(cdf, draws, side="right").astype(np.int64)
