"""Synthetic-data substrate: distributions, correlations, dataset registry.

Replaces the paper's (offline-unavailable) public census datasets with
deterministic analogues whose entropy spectrum, support sizes, top-k gap
structure, and mutual-information landscape are engineered to exercise the
same algorithmic behaviour — see DESIGN.md Section 3 for the substitution
argument.
"""

from repro.synth.correlation import (
    analytic_noisy_copy_mi,
    noisy_copy,
    retention_for_mi,
)
from repro.synth.datasets import (
    DATASETS,
    ColumnPlan,
    DatasetPlan,
    SyntheticDataset,
    build_plan,
    dataset_summary,
    generate,
    load_dataset,
)
from repro.synth.distributions import (
    geometric_probabilities,
    head_mixture_probabilities,
    probabilities_with_entropy,
    sample_categorical,
    uniform_probabilities,
    zipf_probabilities,
)

__all__ = [
    "DATASETS",
    "ColumnPlan",
    "DatasetPlan",
    "SyntheticDataset",
    "analytic_noisy_copy_mi",
    "build_plan",
    "dataset_summary",
    "generate",
    "geometric_probabilities",
    "head_mixture_probabilities",
    "load_dataset",
    "noisy_copy",
    "probabilities_with_entropy",
    "retention_for_mi",
    "sample_categorical",
    "uniform_probabilities",
    "zipf_probabilities",
]
