"""Synthetic-data substrate: distributions, correlations, dataset registry.

Replaces the paper's (offline-unavailable) public census datasets with
deterministic analogues whose entropy spectrum, support sizes, top-k gap
structure, and mutual-information landscape are engineered to exercise the
same algorithmic behaviour — see DESIGN.md Section 3 for the substitution
argument.
"""

from repro.synth.census import (
    MANIFEST_SCHEMA_VERSION,
    SCENARIOS,
    CensusColumnSpec,
    CensusDataset,
    CensusScenario,
    generate_census,
    get_scenario,
    load_manifest,
    manifest_json,
    regenerate_from_manifest,
    verify_manifest,
    write_manifest,
)
from repro.synth.correlation import (
    analytic_noisy_copy_mi,
    noisy_copy,
    retention_for_mi,
)
from repro.synth.datasets import (
    DATASETS,
    ColumnPlan,
    DatasetPlan,
    SyntheticDataset,
    build_plan,
    dataset_summary,
    generate,
    load_dataset,
)
from repro.synth.distributions import (
    geometric_probabilities,
    head_mixture_probabilities,
    probabilities_with_entropy,
    sample_categorical,
    uniform_probabilities,
    zipf_probabilities,
)

__all__ = [
    "DATASETS",
    "MANIFEST_SCHEMA_VERSION",
    "SCENARIOS",
    "CensusColumnSpec",
    "CensusDataset",
    "CensusScenario",
    "ColumnPlan",
    "DatasetPlan",
    "SyntheticDataset",
    "analytic_noisy_copy_mi",
    "build_plan",
    "dataset_summary",
    "generate",
    "generate_census",
    "geometric_probabilities",
    "get_scenario",
    "head_mixture_probabilities",
    "load_dataset",
    "load_manifest",
    "manifest_json",
    "noisy_copy",
    "probabilities_with_entropy",
    "regenerate_from_manifest",
    "retention_for_mi",
    "sample_categorical",
    "uniform_probabilities",
    "verify_manifest",
    "write_manifest",
    "zipf_probabilities",
]
