"""Command-line interface: run paper experiments from a shell.

Installed as the ``repro`` console script (also runnable as
``python -m repro``). Subcommands:

* ``repro list`` — show the available figures and datasets;
* ``repro table2`` — print the Table 2 analogue;
* ``repro figure fig1 [--datasets cdc,pus] [--scale 0.2] [--targets 2]``
  — run one paper figure and print its series;
* ``repro query topk-entropy --dataset cdc -k 4`` — run a single query
  and print the answer with run statistics; ``--timeout-ms``,
  ``--max-cells``, ``--max-sample`` bound the run (degraded answers are
  labelled with their guarantee status) and ``--strict`` turns budget
  exhaustion into a failure exit. Observability flags: ``--trace-out
  PATH`` streams the structured trace events to a JSONL file,
  ``--metrics-out PATH`` dumps the metrics registry (Prometheus text
  when the path ends in ``.prom``, JSON otherwise), and
  ``--emit-metrics`` prints a one-line metrics summary.
* ``repro query --queries plan.json`` — batch mode: plan the queries
  described in the JSON file (see ``docs/PLANNER.md``) and execute them
  over one shared scan, printing each query's answer plus shared-cost
  accounting. The budget flags apply plan-wide; trace/metrics flags
  capture the whole plan.
* ``repro store build --dataset cdc --out DIR`` / ``repro store info
  DIR`` — materialise a dataset as an on-disk memory-mapped column
  store and inspect its manifest; ``repro query ... --store mmap:DIR``
  then runs any query or plan out-of-core against it.

``--backend`` choices come from the counting-backend registry
(:func:`repro.data.backends.backend_names`), so backends registered via
:func:`repro.data.backends.register_backend` are selectable without CLI
changes; the ``REPRO_BACKEND`` environment variable is validated against
the same registry.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.applications.feature_selection import (
    cmim_select,
    mrmr_select,
    top_relevance_select,
)
from repro.core import (
    PlanExecutor,
    QueryBudget,
    load_plan,
    plan_queries,
    swope_filter_entropy,
    swope_filter_mutual_information,
    swope_top_k_entropy,
    swope_top_k_mutual_information,
)
from repro.data.backends import backend_names
from repro.data.describe import describe_store
from repro.data.mmap_store import MmapStore
from repro.durability.atomic import atomic_write_text
from repro.experiments.figures import FIGURES, run_figure, run_table2
from repro.experiments.latex import figure_latex
from repro.experiments.persistence import load_figure_run, save_figure_run
from repro.experiments.plotting import save_figure_svg
from repro.experiments.regression import compare_runs
from repro.experiments.report import render_figure, render_table2
from repro.exceptions import ParameterError, ReproError
from repro.obs import JsonlSink, MetricsRegistry
from repro.synth.census import (
    SCENARIOS,
    generate_census,
    load_manifest,
    regenerate_from_manifest,
    write_manifest,
)
from repro.synth.datasets import DATASETS, load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Approximate Algorithms for Empirical"
            " Entropy and Mutual Information' (SIGMOD 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figures and datasets")

    table2 = sub.add_parser("table2", help="print the Table 2 analogue")
    table2.add_argument("--scale", type=float, default=1.0)

    figure = sub.add_parser("figure", help="run one paper figure")
    figure.add_argument("figure_id", choices=sorted(FIGURES))
    figure.add_argument(
        "--datasets",
        default=None,
        help="comma-separated dataset keys (default: all four)",
    )
    figure.add_argument("--scale", type=float, default=1.0)
    figure.add_argument(
        "--targets", type=int, default=2, help="MI targets to average over"
    )
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--target-mode", choices=["engineered", "random"], default="engineered",
        help="MI target selection (paper: random; analogues: engineered)",
    )
    figure.add_argument(
        "--svg", default=None, help="also render the series to an SVG file"
    )
    figure.add_argument(
        "--svg-metric",
        default="seconds",
        choices=["seconds", "cells_scanned", "accuracy"],
    )
    figure.add_argument(
        "--save", default=None, help="also save the raw run as JSON"
    )
    figure.add_argument(
        "--latex", default=None, help="also render the series as LaTeX tables"
    )

    compare = sub.add_parser(
        "compare", help="diff a new figure run against a saved reference"
    )
    compare.add_argument("reference", help="reference run JSON (repro figure --save)")
    compare.add_argument("candidate", help="candidate run JSON")
    compare.add_argument("--cells-tolerance", type=float, default=0.25)
    compare.add_argument("--accuracy-tolerance", type=float, default=0.02)

    query = sub.add_parser(
        "query", help="run one SWOPE query (or a --queries plan batch)"
    )
    query.add_argument(
        "kind",
        nargs="?",
        default=None,
        choices=["topk-entropy", "filter-entropy", "topk-mi", "filter-mi"],
    )
    query.add_argument(
        "--queries", default=None, metavar="PATH",
        help="batch mode: execute every query of a JSON plan file over one"
             " shared scan (mutually exclusive with the positional kind)",
    )
    query.add_argument("--dataset", choices=sorted(DATASETS), default="cdc")
    query.add_argument("--scale", type=float, default=1.0)
    query.add_argument("-k", type=int, default=4)
    query.add_argument("--eta", type=float, default=2.0)
    query.add_argument("--epsilon", type=float, default=None)
    query.add_argument("--target", default=None, help="MI target attribute")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--timeout-ms", type=float, default=None,
        help="wall-clock budget; on expiry the query returns its"
             " best-effort answer with guarantee status",
    )
    query.add_argument(
        "--max-cells", type=int, default=None,
        help="cap on attribute cells scanned by the query",
    )
    query.add_argument(
        "--max-sample", type=int, default=None,
        help="cap on the sample size the schedule may grow to",
    )
    query.add_argument(
        "--strict", action="store_true",
        help="fail (exit 2) instead of returning a degraded answer when"
             " a budget limit fires",
    )
    query.add_argument(
        "--backend", choices=list(backend_names()), default=None,
        help="counting backend (default: REPRO_BACKEND env var or numpy);"
             " results are bit-identical across backends",
    )
    query.add_argument(
        "--store", default=None, metavar="SPEC",
        help="out-of-core dataset: 'mmap:DIR' opens the on-disk column"
             " store built by 'repro store build' instead of"
             " --dataset/--scale; MI queries then need an explicit"
             " --target",
    )
    query.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the query's structured trace events to PATH as JSONL"
             " (byte-stable at a fixed seed)",
    )
    query.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics to PATH (Prometheus text exposition"
             " when PATH ends in .prom, JSON otherwise)",
    )
    query.add_argument(
        "--emit-metrics", action="store_true",
        help="print a one-line metrics summary after the answer",
    )
    query.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="batch mode: durably snapshot plan progress to PATH (atomic"
             " write-rename) at plan start, iteration boundaries, and every"
             " query retirement, so a crash can resume with --resume",
    )
    query.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="save a boundary checkpoint every N iteration boundaries"
             " (default 1; retirement checkpoints are always written)",
    )
    query.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume an interrupted --queries batch from the checkpoint at"
             " PATH (verified against the dataset fingerprint); --queries"
             " may be omitted — the plan is recovered from the checkpoint",
    )
    query.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent plan cache: serve retired answers (exact and"
             " semantic-dominance matches) without re-scanning, warm-start"
             " counters, and write back converged results (default:"
             " REPRO_CACHE_DIR env var; answers are bit-identical with or"
             " without the cache)",
    )
    query.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir and REPRO_CACHE_DIR for this run",
    )

    select = sub.add_parser(
        "select", help="run a feature-selection application"
    )
    select.add_argument(
        "method", choices=["relevance", "mrmr", "cmim"],
        help="selection criterion",
    )
    select.add_argument("--dataset", choices=sorted(DATASETS), default="cdc")
    select.add_argument("--scale", type=float, default=0.2)
    select.add_argument("-k", type=int, default=5)
    select.add_argument("--label", default=None, help="label attribute")
    select.add_argument(
        "--engine", choices=["swope", "exact"], default="swope"
    )
    select.add_argument("--seed", type=int, default=0)

    describe = sub.add_parser(
        "describe", help="per-attribute profile of a dataset"
    )
    describe.add_argument("--dataset", choices=sorted(DATASETS), default="cdc")
    describe.add_argument("--scale", type=float, default=0.1)
    describe.add_argument("--top", type=int, default=20, help="rows to show")
    describe.add_argument("--sort", choices=["entropy", "name"], default="entropy")

    census = sub.add_parser(
        "synth-census",
        help="generate a census workload scenario (and its manifest)",
    )
    census.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default=None,
        help="scenario to generate (omit with --list to browse the catalog)",
    )
    census.add_argument("--seed", type=int, default=0)
    census.add_argument("--scale", type=float, default=1.0)
    census.add_argument(
        "--manifest-out", default=None, metavar="PATH",
        help="write the provenance manifest to PATH (atomic write-rename)",
    )
    census.add_argument(
        "--verify", default=None, metavar="PATH",
        help="instead of generating: load the manifest at PATH, regenerate"
             " from its recorded (scenario, seed, scale), and check the"
             " sha256 round-trips (exit 2 on mismatch)",
    )
    census.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="print the scenario catalog and exit",
    )

    workloads = sub.add_parser(
        "workloads",
        help="run the census accuracy/performance track vs. exact baselines",
    )
    workloads.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario keys (default: all)",
    )
    workloads.add_argument(
        "--seeds", default="0",
        help="comma-separated dataset/shuffle seeds (default: 0)",
    )
    workloads.add_argument("--scale", type=float, default=1.0)
    workloads.add_argument(
        "--backend", choices=list(backend_names()), default="numpy"
    )
    workloads.add_argument(
        "--save", default=None, metavar="PATH",
        help="also persist the track report as JSON (atomic write-rename)",
    )
    workloads.add_argument(
        "--applications", action="store_true",
        help="also run the applications layer (feature selection + tree)"
             " on every MI-target scenario",
    )

    store_cmd = sub.add_parser(
        "store", help="build or inspect on-disk memory-mapped column stores"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    build = store_sub.add_parser(
        "build", help="materialise a dataset as an on-disk mmap store"
    )
    build.add_argument("--dataset", choices=sorted(DATASETS), default="cdc")
    build.add_argument("--scale", type=float, default=1.0)
    build.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for the store (column .npy files + manifest.json)",
    )
    build.add_argument(
        "--chunk-rows", type=int, default=None, metavar="N",
        help="rows copied per chunk while building (bounds peak memory)",
    )
    info = store_sub.add_parser(
        "info", help="print an mmap store's manifest summary"
    )
    info.add_argument("path", metavar="DIR")
    info.add_argument(
        "--verify", action="store_true",
        help="recompute the dataset fingerprint from the column files and"
             " fail (exit 2) on mismatch",
    )
    return parser


def _cmd_list() -> int:
    print("figures:")
    for figure_id in sorted(FIGURES, key=lambda f: int(f[3:])):
        print(f"  {figure_id:6s} {FIGURES[figure_id].title}")
    print("datasets:")
    for key, plan in sorted(DATASETS.items()):
        print(
            f"  {key:5s} {plan.num_rows:>9,} rows x {plan.num_columns} columns"
            f"  (paper: {plan.paper_rows:,} x {plan.paper_columns})"
        )
    return 0


def _cmd_table2(scale: float) -> int:
    print(render_table2(run_table2(scale=scale)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    datasets = args.datasets.split(",") if args.datasets else None
    run = run_figure(
        args.figure_id,
        datasets=datasets,
        scale=args.scale,
        num_targets=args.targets,
        seed=args.seed,
        target_mode=args.target_mode,
    )
    print(render_figure(run))
    if args.svg:
        save_figure_svg(run, args.svg, metric=args.svg_metric)
        print(f"wrote {args.svg}")
    if args.save:
        save_figure_run(run, args.save)
        print(f"wrote {args.save}")
    if args.latex:
        atomic_write_text(Path(args.latex), figure_latex(run, metric=args.svg_metric))
        print(f"wrote {args.latex}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    reference = load_figure_run(args.reference)
    candidate = load_figure_run(args.candidate)
    comparison = compare_runs(
        reference,
        candidate,
        cells_tolerance=args.cells_tolerance,
        accuracy_tolerance=args.accuracy_tolerance,
    )
    print(comparison.summary())
    return 0 if comparison.ok else 1


def _write_metrics_file(registry: MetricsRegistry, destination: str) -> None:
    """Dump a registry: Prometheus text for ``.prom`` paths, JSON otherwise."""
    path = Path(destination)
    if path.suffix == ".prom":
        atomic_write_text(path, registry.render_prometheus())
    else:
        atomic_write_text(
            path, json.dumps(registry.as_dict(), indent=2, sort_keys=True) + "\n"
        )


def _query_budget(args: argparse.Namespace) -> QueryBudget | None:
    """Assemble the budget from the ``--timeout-ms``-family flags."""
    if (
        args.timeout_ms is None
        and args.max_cells is None
        and args.max_sample is None
    ):
        return None
    return QueryBudget(
        deadline_ms=args.timeout_ms,
        max_cells=args.max_cells,
        max_sample_size=args.max_sample,
    )


def _print_answer(result, *, phases: bool = False) -> None:
    """Print one query's answer block: estimates, stats, guarantee."""
    stats = result.stats
    print(f"answer ({len(result.attributes)} attributes):")
    if isinstance(result.estimates, dict):
        estimates = [result.estimates[a] for a in result.attributes]
    else:
        estimates = result.estimates
    for est in estimates:
        print(
            f"  {est.attribute:20s} estimate={est.estimate:8.4f}"
            f"  bounds=[{est.lower:.4f}, {est.upper:.4f}]"
        )
    print(
        f"stats: M={stats.final_sample_size:,}/{stats.population_size:,}"
        f" ({stats.sample_fraction:.1%}), {stats.iterations} iterations,"
        f" {stats.cells_scanned:,} cells, {stats.wall_seconds:.3f}s"
    )
    if phases:
        print(
            f"phases: counting={stats.counting_seconds:.3f}s"
            f" bounds={stats.bounds_seconds:.3f}s loop={stats.loop_seconds:.3f}s"
        )
    status = result.guarantee
    if status is not None:
        met = "met" if status.guarantee_met else "NOT met"
        print(
            f"guarantee: {met} ({status.stopping_reason}); epsilon"
            f" requested={status.requested_epsilon:g}"
            f" achieved={status.achieved_epsilon:g}"
        )
        if status.undecided:
            print(f"  undecided: {', '.join(status.undecided)}")


def _resolve_store(args: argparse.Namespace):
    """The query's column source: an on-disk mmap store, or a synthetic dataset.

    Returns ``(store, dataset)`` where ``dataset`` is ``None`` for
    ``--store mmap:DIR`` runs (there is no synthetic Dataset wrapper, so
    MI defaults like ``dataset.mi_targets`` are unavailable).
    """
    if args.store is not None:
        kind, _, path = args.store.partition(":")
        if kind != "mmap" or not path:
            raise ParameterError(
                f"--store must look like 'mmap:DIR', got {args.store!r}"
            )
        return MmapStore.open(Path(path)), None
    dataset = load_dataset(args.dataset, scale=args.scale)
    return dataset.store, dataset


def _resolved_cache_dir(args: argparse.Namespace) -> str | None:
    """``--cache-dir`` with the ``REPRO_CACHE_DIR`` fallback, gated by ``--no-cache``."""
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return str(args.cache_dir)
    return os.environ.get("REPRO_CACHE_DIR") or None


def _cmd_query(args: argparse.Namespace) -> int:
    batch = args.queries is not None or args.resume is not None
    if batch and args.kind is not None:
        raise ParameterError(
            "pass either a query kind or a --queries/--resume batch, not both"
        )
    if not batch and (args.checkpoint is not None or args.checkpoint_every != 1):
        raise ParameterError(
            "--checkpoint/--checkpoint-every apply to --queries batches"
            " (single queries re-run cheaply; plans are what resume saves)"
        )
    if batch:
        return _cmd_query_batch(args)
    if args.kind is None:
        raise ParameterError(
            "query needs a kind (topk-entropy, filter-entropy, topk-mi,"
            " filter-mi) or a --queries plan file"
        )
    store, dataset = _resolve_store(args)
    if dataset is not None:
        target = args.target or dataset.mi_targets[0]
    elif args.kind in ("topk-mi", "filter-mi") and args.target is None:
        raise ParameterError(
            "--store runs have no dataset default for the MI target; pass"
            " --target explicitly"
        )
    else:
        target = args.target
    budget = _query_budget(args)
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    registry = (
        MetricsRegistry() if (args.metrics_out or args.emit_metrics) else None
    )
    cache_dir = _resolved_cache_dir(args)
    cache = None
    if cache_dir is not None:
        from repro.cache import PlanCache

        cache = PlanCache(Path(cache_dir))
    resilience = {
        "budget": budget, "strict": args.strict, "backend": args.backend,
        "trace": sink, "metrics": registry, "cache": cache,
    }
    try:
        if args.kind == "topk-entropy":
            result = swope_top_k_entropy(
                store, args.k, epsilon=args.epsilon or 0.1, seed=args.seed,
                **resilience,
            )
        elif args.kind == "filter-entropy":
            result = swope_filter_entropy(
                store, args.eta, epsilon=args.epsilon or 0.05, seed=args.seed,
                **resilience,
            )
        elif args.kind == "topk-mi":
            result = swope_top_k_mutual_information(
                store, target, args.k, epsilon=args.epsilon or 0.5, seed=args.seed,
                **resilience,
            )
        else:
            result = swope_filter_mutual_information(
                store, target, args.eta, epsilon=args.epsilon or 0.5, seed=args.seed,
                **resilience,
            )
    finally:
        # Strict-mode truncation raises after the sink/registry already
        # received the degraded run — flush them so the trace and metrics
        # of a failed query still land on disk.
        if sink is not None:
            sink.close()
        if registry is not None and args.metrics_out:
            _write_metrics_file(registry, args.metrics_out)
    _print_answer(result, phases=True)
    if sink is not None:
        print(f"wrote {args.trace_out} ({sink.event_count} events)")
    if registry is not None and args.metrics_out:
        print(f"wrote {args.metrics_out}")
    if registry is not None and args.emit_metrics:
        print(
            "metrics:"
            f" queries_total={int(registry.counter('queries_total').value)}"
            f" iterations_total={int(registry.counter('iterations_total').value)}"
            " cells_scanned_total="
            f"{int(registry.counter('cells_scanned_total').value)}"
            f" trace_events={result.stats.trace_event_count}"
        )
    return 0


def _cmd_query_batch(args: argparse.Namespace) -> int:
    """Execute a ``--queries`` plan file (or resume one) over one shared scan."""
    store, _ = _resolve_store(args)
    budget = _query_budget(args)
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    registry = (
        MetricsRegistry() if (args.metrics_out or args.emit_metrics) else None
    )
    cache_dir = _resolved_cache_dir(args)
    if args.resume is not None:
        if args.checkpoint is not None:
            raise ParameterError(
                "pass either --checkpoint or --resume, not both: a resumed"
                " run keeps checkpointing to the file it resumed from"
            )
        executor = PlanExecutor.resume(
            args.resume, store,
            backend=args.backend, trace=sink, metrics=registry,
            cache_dir=cache_dir,
        )
        plan = (
            plan_queries(store, load_plan(args.queries))
            if args.queries is not None
            else executor.resumed_plan()
        )
    else:
        specs = load_plan(args.queries)
        plan = plan_queries(store, specs)
        executor = PlanExecutor(
            store,
            seed=args.seed,
            backend=args.backend,
            budget=budget,
            trace=sink,
            metrics=registry,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            cache_dir=cache_dir,
        )
    try:
        if args.resume is not None and budget is None:
            # Let the residual budget recorded in the checkpoint apply.
            outcome = executor.execute(plan, strict=args.strict)
        else:
            outcome = executor.execute(plan, strict=args.strict, budget=budget)
    finally:
        # As in single-query mode: a strict-mode failure already streamed
        # its partial trace/metrics — flush them before propagating.
        if sink is not None:
            sink.close()
        if registry is not None and args.metrics_out:
            _write_metrics_file(registry, args.metrics_out)
    stats = outcome.stats
    source = args.store if args.store is not None else args.dataset
    print(f"plan: {len(plan)} queries over {source} (N={store.num_rows:,})")
    for spec in plan:
        name = spec.name or ""
        print(f"\n[{name}] {spec.describe()}")
        _print_answer(outcome.results[name])
    print("\nshared-scan accounting:")
    print(f"  cells scanned (plan total): {stats.cells_scanned:,}")
    if cache_dir is not None:
        saved = sum(
            result.stats.cells_saved for result in outcome.results.values()
        )
        print(f"  cells saved by cache: {saved:,}")
    for name in plan.names:
        marginal = stats.per_query_cells.get(name, 0)
        print(f"    {name:20s} +{marginal:,} cells")
    print(
        f"  sample floor reached: {stats.sample_floor:,}"
        f"/{stats.population_size:,} rows"
    )
    print(
        f"  retained counters: {len(executor.sampler.counted_attributes)}"
        " attributes"
    )
    if sink is not None:
        print(f"wrote {args.trace_out} ({sink.event_count} events)")
    if registry is not None and args.metrics_out:
        print(f"wrote {args.metrics_out}")
    if registry is not None and args.emit_metrics:
        print(
            "metrics:"
            f" plans_total={int(registry.counter('plans_total').value)}"
            f" plan_queries_total="
            f"{int(registry.counter('plan_queries_total').value)}"
            " plan_cells_scanned_total="
            f"{int(registry.counter('plan_cells_scanned_total').value)}"
            f" cache_hits_total={int(registry.counter('cache_hits_total').value)}"
            " cache_cells_saved_total="
            f"{int(registry.counter('cache_cells_saved_total').value)}"
        )
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    store = dataset.store
    label = args.label or dataset.mi_targets[0]
    selector = {
        "relevance": top_relevance_select,
        "mrmr": mrmr_select,
        "cmim": cmim_select,
    }[args.method]
    result = selector(store, label, args.k, engine=args.engine, seed=args.seed)
    print(
        f"{args.method} selected {len(result.features)} features for label"
        f" {label!r} (engine: {result.engine}):"
    )
    for name in result.features:
        print(f"  {name:20s} relevance~{result.scores[name]:.4f}")
    print(f"cost: {result.cells_scanned:,} cells scanned")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    profiles = describe_store(dataset.store, sort_by=args.sort)
    print(
        f"{args.dataset}: {dataset.store.num_rows:,} rows x"
        f" {dataset.store.num_attributes} attributes"
        f" (showing {min(args.top, len(profiles))})"
    )
    print(
        f"{'attribute':22s} {'support':>7s} {'seen':>6s} {'entropy':>8s}"
        f" {'norm':>5s} {'top%':>6s}"
    )
    for profile in profiles[: args.top]:
        print(
            f"{profile.attribute:22s} {profile.support_size:7d}"
            f" {profile.observed_values:6d} {profile.entropy:8.3f}"
            f" {profile.normalized_entropy:5.2f} {profile.top_share:6.1%}"
        )
    return 0


def _cmd_synth_census(args: argparse.Namespace) -> int:
    from repro.data.filters import PAPER_MAX_SUPPORT

    if args.list_scenarios:
        print("census scenarios:")
        for key in sorted(SCENARIOS):
            scenario = SCENARIOS[key]
            print(
                f"  {key:12s} {scenario.num_rows:>7,} rows x"
                f" {scenario.num_columns} columns, {len(scenario.queries)}"
                f" queries — {scenario.title}"
            )
        return 0
    if args.verify is not None:
        manifest = load_manifest(args.verify)
        dataset = regenerate_from_manifest(manifest)
        print(
            f"ok: {manifest['scenario']} seed={manifest['seed']}"
            f" scale={manifest['scale']} regenerates"
            f" {dataset.store.num_rows:,} rows with matching sha256"
            f" {dataset.fingerprint[:12]}..."
        )
        return 0
    if args.scenario is None:
        raise ParameterError(
            "synth-census needs --scenario (or --list / --verify)"
        )
    dataset = generate_census(args.scenario, seed=args.seed, scale=args.scale)
    over = [
        name
        for name in dataset.store.attributes
        if dataset.store.support_size(name) > PAPER_MAX_SUPPORT
    ]
    print(
        f"{args.scenario}: {dataset.store.num_rows:,} rows x"
        f" {dataset.store.num_attributes} columns (seed={args.seed},"
        f" scale={args.scale:g})"
    )
    print(f"sha256: {dataset.fingerprint}")
    if over:
        print(
            f"over the u={PAPER_MAX_SUPPORT} cutoff (dropped by"
            f" preprocessing): {', '.join(over)}"
        )
    for entry in dataset.manifest["columns"]:  # type: ignore[union-attr]
        print(
            f"  {entry['name']:18s} {entry['family']:15s}"
            f" u={entry['support_size']:<5d} H={entry['entropy']:7.3f}"
            f" missing={entry['missing_rate']:g} noise={entry['noise_rate']:g}"
        )
    if args.manifest_out:
        write_manifest(dataset.manifest, args.manifest_out)
        print(f"wrote {args.manifest_out}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.experiments.workloads import (
        run_census_applications,
        run_census_track,
        render_track,
        save_track_report,
    )
    from repro.synth.census import get_scenario

    scenarios = args.scenarios.split(",") if args.scenarios else None
    seeds = tuple(int(s) for s in args.seeds.split(","))
    report = run_census_track(
        scenarios, seeds=seeds, scale=args.scale, backend=args.backend
    )
    print(render_track(report))
    if args.save:
        save_track_report(report, args.save)
        print(f"wrote {args.save}")
    if args.applications:
        keys = report.scenarios
        for key in keys:
            if not get_scenario(key).mi_targets:
                continue
            apps = run_census_applications(
                key, seed=seeds[0], scale=args.scale
            )
            print(
                f"applications[{key}]: label={apps['label']}"
                f" selection_overlap={apps['selection_overlap']:.2f}"
                f" tree_swope={apps['tree_accuracy_swope']:.3f}"
                f" tree_exact={apps['tree_accuracy_exact']:.3f}"
            )
    return 0 if report.violation_count == 0 else 1


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "build":
        dataset = load_dataset(args.dataset, scale=args.scale)
        kwargs = {}
        if args.chunk_rows is not None:
            kwargs["chunk_rows"] = args.chunk_rows
        store = MmapStore.from_column_store(
            dataset.store, Path(args.out), **kwargs
        )
        print(
            f"built {args.out}: {store.num_rows:,} rows x"
            f" {store.num_attributes} columns"
            f" ({store.disk_bytes():,} bytes on disk)"
        )
        print(f"fingerprint: {store.fingerprint()}")
        return 0
    store = MmapStore.open(Path(args.path))
    print(
        f"{args.path}: {store.num_rows:,} rows x {store.num_attributes}"
        f" columns ({store.disk_bytes():,} bytes on disk)"
    )
    print(f"fingerprint: {store.fingerprint()}")
    for name in store.attributes:
        print(f"  {name:20s} u={store.support_size(name)}")
    if args.verify:
        store.verify_fingerprint()
        print("fingerprint verified: column bytes match the manifest")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "table2":
            return _cmd_table2(args.scale)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "select":
            return _cmd_select(args)
        if args.command == "describe":
            return _cmd_describe(args)
        if args.command == "synth-census":
            return _cmd_synth_census(args)
        if args.command == "workloads":
            return _cmd_workloads(args)
        if args.command == "store":
            return _cmd_store(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover - argparse enforces a command


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
