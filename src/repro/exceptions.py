"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class SchemaError(ReproError):
    """A dataset schema is inconsistent or an attribute is unknown.

    Raised, for example, when two columns of different lengths are combined
    into a :class:`~repro.data.column_store.ColumnStore`, or when a query
    names an attribute that does not exist.
    """


class EncodingError(ReproError):
    """A column could not be encoded into the dense ``[0, u)`` integer range."""


class ParameterError(ReproError):
    """A query or generator parameter is outside its documented domain.

    Examples: ``epsilon`` outside ``(0, 1)``, ``k < 1``, a negative
    threshold, or a failure probability outside ``(0, 1)``.
    """


class DataFormatError(ReproError):
    """An input file (CSV or cached ``.npz``) could not be parsed."""


class PlanError(ParameterError):
    """A query plan's specs are structurally invalid.

    Raised by :func:`repro.core.plan.plan_queries` (and by
    :class:`~repro.core.plan.QuerySpec` construction) for plan-level
    problems caught *before* any sampling happens: duplicate specs or
    names, conflicting spec fields (a top-k spec carrying a threshold),
    a filter threshold that is not strictly positive, or an MI spec
    whose target is also a candidate. Derives from
    :class:`ParameterError` so callers written against the single-query
    API can keep catching one type.
    """


class ResultConsistencyError(ReproError, ValueError):
    """A result object was constructed with inconsistent fields.

    Also derives from :class:`ValueError` so callers (and tests) written
    against the pre-hierarchy behaviour keep working.
    """


class UnknownAttributeError(SchemaError, KeyError):
    """A result lookup named an attribute that is not part of the answer.

    Also derives from :class:`KeyError` for mapping-style compatibility.
    """


class AnalysisError(ReproError):
    """The static-analysis pass (:mod:`repro.analysis`) was misconfigured.

    Examples: an unknown ``SWP###`` code passed to ``--select``, or a
    malformed baseline file.
    """


class CheckpointError(ReproError):
    """A plan checkpoint could not be written, read, or verified.

    Raised by :mod:`repro.durability.checkpoint` when a checkpoint file
    is missing, is not valid JSON, fails its sha256 integrity check
    (e.g. truncated by a crash that bypassed the atomic writer), or
    carries structurally invalid state.
    """


class CheckpointMismatchError(CheckpointError):
    """A checkpoint refuses to load against this code or dataset.

    Two cases: the file's schema version differs from
    :data:`repro.durability.checkpoint.CHECKPOINT_SCHEMA_VERSION`, or
    its dataset fingerprint does not match the store it is being resumed
    against. Both mean the snapshot's counters cannot be trusted to
    describe the data at hand, so loading is refused rather than
    degraded.
    """


class ManifestError(ReproError):
    """A dataset provenance manifest is malformed or cannot be processed.

    Raised by :mod:`repro.synth.census` when a manifest file is not valid
    JSON, misses required keys, or carries an unknown schema version.
    """


class ManifestMismatchError(ManifestError):
    """A provenance manifest does not describe the dataset at hand.

    Raised when verification finds the realized dataset (column set,
    row count, or sha256 fingerprint) differing from what the manifest
    records — the dataset cannot be trusted to be the manifested one,
    so benchmarks and golden comparisons must refuse it rather than
    silently compare against different data.
    """


class QueryInterruptedError(ReproError):
    """A query stopped before its stopping rule fired (strict mode only).

    Raised only when a query runs with ``strict=True``; the default
    behaviour on budget exhaustion or cancellation is to *return* a
    best-effort result whose :class:`~repro.core.results.GuaranteeStatus`
    records why the run stopped.

    Attributes
    ----------
    stopping_reason:
        Why the run stopped (``"deadline"``, ``"cell_budget"``,
        ``"sample_cap"``, or ``"cancelled"``).
    partial:
        The best-effort :class:`~repro.core.results.TopKResult` /
        :class:`~repro.core.results.FilterResult` the query would have
        returned in non-strict mode (``None`` when unavailable).
    """

    def __init__(
        self,
        message: str,
        *,
        stopping_reason: str | None = None,
        partial: object | None = None,
    ) -> None:
        super().__init__(message)
        self.stopping_reason = stopping_reason
        self.partial = partial


class BudgetExceededError(QueryInterruptedError):
    """A strict-mode query exhausted its :class:`~repro.core.budget.QueryBudget`."""


class QueryCancelledError(QueryInterruptedError):
    """A strict-mode query was cancelled through its
    :class:`~repro.core.budget.CancellationToken`."""
