"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class SchemaError(ReproError):
    """A dataset schema is inconsistent or an attribute is unknown.

    Raised, for example, when two columns of different lengths are combined
    into a :class:`~repro.data.column_store.ColumnStore`, or when a query
    names an attribute that does not exist.
    """


class EncodingError(ReproError):
    """A column could not be encoded into the dense ``[0, u)`` integer range."""


class ParameterError(ReproError):
    """A query or generator parameter is outside its documented domain.

    Examples: ``epsilon`` outside ``(0, 1)``, ``k < 1``, a negative
    threshold, or a failure probability outside ``(0, 1)``.
    """


class DataFormatError(ReproError):
    """An input file (CSV or cached ``.npz``) could not be parsed."""
