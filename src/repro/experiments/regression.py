"""Compare two saved figure runs (regression checking).

Reference numbers live under ``results/``; after changing the algorithms
or the datasets, re-running a figure and diffing against the stored
reference answers "did anything move?" without eyeballing tables. Used by
``repro compare old.json new.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.experiments.figures import FigureRun

__all__ = ["PointDelta", "RunComparison", "compare_runs"]


@dataclass(frozen=True)
class PointDelta:
    """Change of one (dataset, x, algorithm) measurement between runs."""

    dataset: str
    x: float
    algorithm: str
    cells_ratio: float  # new / old
    seconds_ratio: float  # new / old
    accuracy_delta: float  # new - old

    def is_regression(
        self, *, cells_tolerance: float, accuracy_tolerance: float
    ) -> bool:
        """Whether this point moved beyond the given tolerances.

        A *regression* is more cells scanned (beyond tolerance) or lower
        accuracy; improvements are never flagged. Wall-clock is reported
        but not gated (too machine-noisy).
        """
        worse_cost = self.cells_ratio > 1.0 + cells_tolerance
        worse_accuracy = self.accuracy_delta < -accuracy_tolerance
        return worse_cost or worse_accuracy


@dataclass
class RunComparison:
    """Full comparison of two runs of the same figure."""

    figure_id: str
    deltas: list[PointDelta]
    cells_tolerance: float
    accuracy_tolerance: float

    @property
    def regressions(self) -> list[PointDelta]:
        """Points that got materially worse."""
        return [
            d
            for d in self.deltas
            if d.is_regression(
                cells_tolerance=self.cells_tolerance,
                accuracy_tolerance=self.accuracy_tolerance,
            )
        ]

    @property
    def ok(self) -> bool:
        """True when nothing regressed beyond tolerance."""
        return not self.regressions

    def summary(self) -> str:
        """One-paragraph human summary."""
        if self.ok:
            worst = max((d.cells_ratio for d in self.deltas), default=1.0)
            return (
                f"{self.figure_id}: OK — {len(self.deltas)} points compared,"
                f" worst cells ratio {worst:.2f}x, no regressions beyond"
                f" {self.cells_tolerance:.0%} cost / "
                f"{self.accuracy_tolerance:.2f} accuracy."
            )
        lines = [
            f"{self.figure_id}: {len(self.regressions)} regression(s) out of"
            f" {len(self.deltas)} points:"
        ]
        for d in self.regressions:
            lines.append(
                f"  {d.dataset} x={d.x:g} {d.algorithm}:"
                f" cells x{d.cells_ratio:.2f},"
                f" accuracy {d.accuracy_delta:+.3f}"
            )
        return "\n".join(lines)


def compare_runs(
    reference: FigureRun,
    candidate: FigureRun,
    *,
    cells_tolerance: float = 0.25,
    accuracy_tolerance: float = 0.02,
) -> RunComparison:
    """Compare ``candidate`` against ``reference`` point by point.

    Both runs must be of the same figure; only (dataset, x, algorithm)
    points present in *both* are compared (so a candidate run over a
    dataset subset still works). Raises when the runs share no points.
    """
    if reference.spec.figure_id != candidate.spec.figure_id:
        raise ParameterError(
            f"cannot compare {reference.spec.figure_id} against"
            f" {candidate.spec.figure_id}"
        )
    ref_index = {
        (p.dataset, p.x, p.algorithm): p for p in reference.points
    }
    deltas: list[PointDelta] = []
    for point in candidate.points:
        key = (point.dataset, point.x, point.algorithm)
        ref = ref_index.get(key)
        if ref is None:
            continue
        deltas.append(
            PointDelta(
                dataset=point.dataset,
                x=point.x,
                algorithm=point.algorithm,
                cells_ratio=(
                    point.cells_scanned / ref.cells_scanned
                    if ref.cells_scanned
                    else float("inf")
                ),
                seconds_ratio=(
                    point.seconds / ref.seconds if ref.seconds else float("inf")
                ),
                accuracy_delta=point.accuracy - ref.accuracy,
            )
        )
    if not deltas:
        raise ParameterError("the two runs share no (dataset, x, algorithm) points")
    return RunComparison(
        figure_id=reference.spec.figure_id,
        deltas=deltas,
        cells_tolerance=cells_tolerance,
        accuracy_tolerance=accuracy_tolerance,
    )
