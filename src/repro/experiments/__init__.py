"""Experiment harness: accuracy metrics, runners, and the figure registry.

Reproduces the paper's evaluation (Section 6): Table 2 and Figures 1–12,
over the synthetic dataset analogues of :mod:`repro.synth`. The pytest
benchmarks under ``benchmarks/`` and the CLI (``repro figure fig1``) both
drive this package.
"""

from repro.experiments.accuracy import (
    FilterAccuracy,
    check_filter_guarantee,
    check_top_k_guarantee,
    filter_precision_recall,
    relative_error,
    top_k_accuracy,
)
from repro.experiments.figures import (
    FIGURES,
    FigurePoint,
    FigureRun,
    FigureSpec,
    run_figure,
    run_table2,
)
from repro.experiments.latex import figure_latex, table2_latex
from repro.experiments.markdown import figure_markdown, table2_markdown
from repro.experiments.persistence import load_figure_run, save_figure_run
from repro.experiments.plotting import figure_svg, save_figure_svg
from repro.experiments.regression import PointDelta, RunComparison, compare_runs
from repro.experiments.report import format_table, render_figure, render_table2
from repro.experiments.summary import FigureSummary, summarize_run
from repro.experiments.runner import (
    ALGORITHMS,
    GroundTruthCache,
    QueryOutcome,
    run_entropy_filter,
    run_entropy_top_k,
    run_mi_filter,
    run_mi_top_k,
)
from repro.experiments.workloads import (
    CensusTrackReport,
    ScenarioOutcome,
    ScenarioQueryReport,
    census_plan,
    render_track,
    run_census_applications,
    run_census_track,
    run_scenario,
    save_track_report,
)

__all__ = [
    "ALGORITHMS",
    "CensusTrackReport",
    "FIGURES",
    "FigurePoint",
    "FigureRun",
    "FigureSpec",
    "FigureSummary",
    "FilterAccuracy",
    "GroundTruthCache",
    "PointDelta",
    "QueryOutcome",
    "RunComparison",
    "ScenarioOutcome",
    "ScenarioQueryReport",
    "census_plan",
    "check_filter_guarantee",
    "check_top_k_guarantee",
    "compare_runs",
    "figure_latex",
    "figure_markdown",
    "figure_svg",
    "filter_precision_recall",
    "format_table",
    "load_figure_run",
    "relative_error",
    "render_figure",
    "render_table2",
    "render_track",
    "run_census_applications",
    "run_census_track",
    "run_entropy_filter",
    "run_scenario",
    "save_figure_run",
    "save_figure_svg",
    "save_track_report",
    "run_entropy_top_k",
    "run_figure",
    "run_mi_filter",
    "run_mi_top_k",
    "run_table2",
    "summarize_run",
    "table2_latex",
    "table2_markdown",
    "top_k_accuracy",
]
