"""Accuracy metrics comparing query answers against exact ground truth.

The paper reports a single "accuracy" number per query (Figures 2, 4, 6, 8
and the (b) panels of Figures 9–12). We implement:

* :func:`top_k_accuracy` — the fraction of the returned attributes that
  belong to the exact top-k set (what the paper plots for top-k queries),
  plus a tie-tolerant variant that treats attributes whose exact score
  equals the exact k-th score as interchangeable;
* :func:`filter_precision_recall` — precision/recall/F1 of the returned
  set against the exact answer set (the paper's filtering "accuracy" is
  recall of the exact set: "correctly reports all the attributes");
* Definition 5 / Definition 6 compliance checkers used by the statistical
  guarantee tests — these verify the *approximation contract* rather than
  set equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import FilterResult, TopKResult
from repro.exceptions import ParameterError

__all__ = [
    "FilterAccuracy",
    "top_k_accuracy",
    "filter_precision_recall",
    "check_top_k_guarantee",
    "check_filter_guarantee",
    "relative_error",
]


def _ranked(scores: dict[str, float]) -> list[str]:
    return sorted(scores, key=lambda a: (-scores[a], a))


def top_k_accuracy(
    returned: list[str],
    exact_scores: dict[str, float],
    k: int,
    *,
    tie_tolerance: float = 0.0,
) -> float:
    """Fraction of returned attributes that belong to the exact top-k set.

    Parameters
    ----------
    returned:
        The attributes a query returned (at most ``k``).
    exact_scores:
        Exact scores of *all* candidate attributes.
    k:
        The query's ``k``.
    tie_tolerance:
        Attributes whose exact score is within ``tie_tolerance`` of the
        exact k-th largest score count as correct even if outside the
        literal top-k set — with near-ties the exact set is arbitrary among
        the tied attributes, and any of them is a defensible answer.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if not exact_scores:
        raise ParameterError("exact_scores must be non-empty")
    unknown = [a for a in returned if a not in exact_scores]
    if unknown:
        raise ParameterError(f"returned attributes missing from scores: {unknown}")
    k_effective = min(k, len(exact_scores))
    ranking = _ranked(exact_scores)
    top_set = set(ranking[:k_effective])
    kth_score = exact_scores[ranking[k_effective - 1]]
    hits = sum(
        1
        for a in returned
        if a in top_set or exact_scores[a] >= kth_score - tie_tolerance
    )
    return hits / k_effective


@dataclass(frozen=True)
class FilterAccuracy:
    """Precision/recall of a filtering answer against the exact answer set."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def filter_precision_recall(
    returned: list[str],
    exact_scores: dict[str, float],
    threshold: float,
) -> FilterAccuracy:
    """Precision/recall of ``returned`` against ``{α : score(α) >= η}``.

    Conventions for empty sets: precision is 1.0 when nothing was
    returned; recall is 1.0 when the exact answer set is empty.
    """
    if not exact_scores:
        raise ParameterError("exact_scores must be non-empty")
    unknown = [a for a in returned if a not in exact_scores]
    if unknown:
        raise ParameterError(f"returned attributes missing from scores: {unknown}")
    truth = {a for a, s in exact_scores.items() if s >= threshold}
    got = set(returned)
    tp = len(got & truth)
    fp = len(got - truth)
    fn = len(truth - got)
    precision = 1.0 if not got else tp / len(got)
    recall = 1.0 if not truth else tp / len(truth)
    return FilterAccuracy(
        precision=precision,
        recall=recall,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def check_top_k_guarantee(
    result: TopKResult,
    exact_scores: dict[str, float],
    epsilon: float,
    *,
    slack: float = 1e-9,
) -> list[str]:
    """Verify the Definition 5 contract; return a list of violations.

    Checks, for the returned attributes ``α'_1 ... α'_k`` (ordered) against
    the exact ranking ``α*_1 ... α*_k``:

    * (i) ``estimate(α'_i) >= (1 - ε) · score(α'_i)``
    * (ii) ``score(α'_i) >= (1 - ε) · score(α*_i)``

    An empty list means the answer satisfies the definition.
    """
    violations: list[str] = []
    ranking = _ranked(exact_scores)
    for index, estimate in enumerate(result.estimates):
        name = estimate.attribute
        exact = exact_scores[name]
        if estimate.estimate < (1.0 - epsilon) * exact - slack:
            violations.append(
                f"(i) estimate of {name!r} = {estimate.estimate:.6f} <"
                f" (1-ε)·{exact:.6f}"
            )
        if index < len(ranking):
            star = exact_scores[ranking[index]]
            if exact < (1.0 - epsilon) * star - slack:
                violations.append(
                    f"(ii) rank {index + 1}: score({name!r}) = {exact:.6f} <"
                    f" (1-ε)·{star:.6f}"
                )
    return violations


def check_filter_guarantee(
    result: FilterResult,
    exact_scores: dict[str, float],
    epsilon: float,
    *,
    slack: float = 1e-9,
) -> list[str]:
    """Verify the Definition 6 contract; return a list of violations.

    * every attribute with ``score >= (1 + ε)η`` must be returned;
    * no attribute with ``score < (1 - ε)η`` may be returned;
    * the band in between is unconstrained.
    """
    violations: list[str] = []
    eta = result.threshold
    answer = result.answer_set()
    for name, score in exact_scores.items():
        if score >= (1.0 + epsilon) * eta + slack and name not in answer:
            violations.append(
                f"missing {name!r}: score {score:.6f} >= (1+ε)η ="
                f" {(1.0 + epsilon) * eta:.6f}"
            )
        if score < (1.0 - epsilon) * eta - slack and name in answer:
            violations.append(
                f"spurious {name!r}: score {score:.6f} < (1-ε)η ="
                f" {(1.0 - epsilon) * eta:.6f}"
            )
    return violations


def relative_error(estimate: float, exact: float) -> float:
    """``|estimate - exact| / exact`` with the 0/0 convention of 0."""
    if exact == 0.0:
        return 0.0 if math.isclose(estimate, 0.0, abs_tol=1e-12) else math.inf
    return abs(estimate - exact) / exact
