"""Save/load experiment results (JSON round trip).

Figure runs are cheap to serialise and useful to keep: the reference
numbers in EXPERIMENTS.md come from ``results/*.json`` written through
this module, and regression comparisons (did a change alter a measured
series?) can reload them without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.durability.atomic import atomic_write_text
from repro.exceptions import DataFormatError
from repro.experiments.figures import FIGURES, FigurePoint, FigureRun

__all__ = ["save_figure_run", "load_figure_run"]

_FORMAT_VERSION = 1


def save_figure_run(run: FigureRun, path: str | Path) -> None:
    """Serialise a figure run (spec reference + all points) to JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "figure": run.spec.figure_id,
        "datasets": run.datasets,
        "scale": run.scale,
        "num_targets": run.num_targets,
        "points": [
            {
                "dataset": p.dataset,
                "x": p.x,
                "algorithm": p.algorithm,
                "seconds": p.seconds,
                "cells_scanned": p.cells_scanned,
                "sample_fraction": p.sample_fraction,
                "accuracy": p.accuracy,
                "extra": p.extra,
            }
            for p in run.points
        ],
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=1))


def load_figure_run(path: str | Path) -> FigureRun:
    """Reload a figure run saved by :func:`save_figure_run`.

    The spec is resolved from the in-code registry by figure id, so a
    saved file from an older registry whose figure no longer exists (or a
    malformed file) raises :class:`~repro.exceptions.DataFormatError`.
    """
    path = Path(path)
    if not path.exists():
        raise DataFormatError(f"no such file: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise DataFormatError(f"{path}: unsupported result format")
    figure_id = payload.get("figure")
    if figure_id not in FIGURES:
        raise DataFormatError(f"{path}: unknown figure {figure_id!r}")
    try:
        run = FigureRun(
            spec=FIGURES[figure_id],
            datasets=list(payload["datasets"]),
            scale=float(payload["scale"]),
            num_targets=int(payload["num_targets"]),
        )
        for raw in payload["points"]:
            run.points.append(
                FigurePoint(
                    dataset=str(raw["dataset"]),
                    x=float(raw["x"]),
                    algorithm=str(raw["algorithm"]),
                    seconds=float(raw["seconds"]),
                    cells_scanned=float(raw["cells_scanned"]),
                    sample_fraction=float(raw["sample_fraction"]),
                    accuracy=float(raw["accuracy"]),
                    extra=dict(raw.get("extra", {})),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataFormatError(f"{path}: malformed result payload: {exc}") from exc
    return run
