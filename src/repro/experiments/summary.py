"""Headline statistics of a figure run (speedup ranges, accuracy floor).

`scripts/run_experiments.py` prints one of these per figure; EXPERIMENTS.md
quotes them. Factored into the package so tests pin the semantics and
downstream users can compute the same numbers programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.experiments.figures import FigureRun

__all__ = ["FigureSummary", "summarize_run"]


@dataclass(frozen=True)
class FigureSummary:
    """Headline numbers of one figure run.

    Attributes
    ----------
    figure_id:
        Which figure.
    speedups:
        ``{baseline: (min, max)}`` of the SWOPE cells-scanned speedup
        over each non-SWOPE algorithm, across all (dataset, x) points.
        Empty when the figure runs SWOPE only (the ε sweeps).
    swope_accuracy:
        ``(min, max)`` accuracy of the SWOPE points.
    cost_range:
        ``(min, max)`` cells scanned by SWOPE across the sweep — the
        dynamic range of the ε trade-off for the sweep figures.
    """

    figure_id: str
    speedups: dict[str, tuple[float, float]]
    swope_accuracy: tuple[float, float]
    cost_range: tuple[float, float]

    def line(self) -> str:
        """One-line human rendering (what run_experiments.py prints)."""
        parts = [self.figure_id]
        for baseline, (lo, hi) in sorted(self.speedups.items()):
            parts.append(f"vs {baseline}: {lo:.1f}-{hi:.1f}x")
        lo, hi = self.swope_accuracy
        parts.append(f"accuracy {lo:.3f}-{hi:.3f}")
        return " | ".join(parts)


def summarize_run(run: FigureRun) -> FigureSummary:
    """Compute the headline statistics of one executed figure."""
    swope_points = [p for p in run.points if p.algorithm == "swope"]
    if not swope_points:
        raise ParameterError(
            f"figure {run.spec.figure_id!r} has no SWOPE measurements"
        )
    speedups: dict[str, tuple[float, float]] = {}
    for baseline in run.spec.algorithms:
        if baseline == "swope":
            continue
        ratios = [
            run.speedup(dataset, baseline, x)
            for dataset in run.datasets
            for x in run.spec.x_values
        ]
        speedups[baseline] = (min(ratios), max(ratios))
    accuracies = [p.accuracy for p in swope_points]
    costs = [p.cells_scanned for p in swope_points]
    return FigureSummary(
        figure_id=run.spec.figure_id,
        speedups=speedups,
        swope_accuracy=(min(accuracies), max(accuracies)),
        cost_range=(min(costs), max(costs)),
    )
