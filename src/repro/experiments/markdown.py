"""GitHub-flavoured-Markdown rendering of experiment results.

The third output format next to text (:mod:`repro.experiments.report`)
and LaTeX (:mod:`repro.experiments.latex`): pipe-table Markdown suitable
for READMEs, issues, and pull-request descriptions.
"""

from __future__ import annotations

from repro.exceptions import ParameterError
from repro.experiments.figures import FigureRun

__all__ = ["figure_markdown", "table2_markdown"]

_METRICS = ("seconds", "cells_scanned", "accuracy")


def _fmt(metric: str, point) -> str:
    if metric == "seconds":
        value = point.seconds
        return f"{value:.2f} s" if value >= 1 else f"{value * 1000:.1f} ms"
    if metric == "cells_scanned":
        return f"{point.cells_scanned:,.0f}"
    return f"{point.accuracy:.3f}"


def figure_markdown(run: FigureRun, metric: str = "seconds") -> str:
    """Render one figure run as Markdown tables (one per dataset).

    Adds a SWOPE speedup column per baseline when the run includes
    baselines, mirroring the text report.
    """
    if metric not in _METRICS:
        raise ParameterError(f"unknown metric {metric!r}; expected one of {_METRICS}")
    if not run.points:
        raise ParameterError("figure run holds no measurements")
    spec = run.spec
    algos = list(spec.algorithms)
    baselines = [a for a in algos if a != "swope"] if "swope" in algos else []
    blocks = [f"### {spec.figure_id}: {spec.title} ({metric})", ""]
    for dataset in run.datasets:
        headers = [spec.x_label(), *algos]
        if metric == "cells_scanned":
            headers += [f"×{b}" for b in baselines]
        blocks.append(f"**{dataset}**")
        blocks.append("")
        blocks.append("| " + " | ".join(headers) + " |")
        blocks.append("|" + "---|" * len(headers))
        for x in spec.x_values:
            points = {
                p.algorithm: p
                for p in run.points
                if p.dataset == dataset and p.x == float(x)
            }
            row = [f"{x:g}"] + [_fmt(metric, points[a]) for a in algos]
            if metric == "cells_scanned":
                ours = points["swope"].cells_scanned or 1.0
                row += [
                    f"{points[b].cells_scanned / ours:.1f}" for b in baselines
                ]
            blocks.append("| " + " | ".join(row) + " |")
        blocks.append("")
    return "\n".join(blocks)


def table2_markdown(rows: list[dict[str, object]]) -> str:
    """Render the Table 2 analogue as a Markdown table."""
    lines = [
        "| dataset | rows | columns | paper rows | paper columns |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['dataset']} | {row['rows']:,} | {row['columns']} |"
            f" {row['paper_rows']:,} | {row['paper_columns']} |"
        )
    return "\n".join(lines)
