"""Registry of the paper's evaluation: Figures 1–12 and Table 2.

Each :class:`FigureSpec` declares what one paper figure varies and holds
fixed; :func:`run_figure` executes it over the synthetic dataset analogues
and returns the same series the paper plots — query time per algorithm
(the (a)/time panels) and accuracy (the (b)/accuracy panels), plus the
scale-free cells-scanned metric DESIGN.md motivates.

Paper parameter grids (Section 6.1):

* top-k queries: k ∈ {1, 2, 4, 8, 10};
* entropy filtering: η ∈ {0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
* MI filtering: η ∈ {0.1, 0.2, 0.3, 0.4, 0.5};
* ε tuning: ε ∈ {0.01, 0.025, 0.05, 0.1, 0.25, 0.5} with k = 4 /
  η = 2 (entropy) / η = 0.3 (MI);
* defaults ε = 0.1 (entropy top-k), 0.05 (entropy filter), 0.5 (MI both);
* p_f = 1/N; MI metrics averaged over several targets (20 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.exceptions import ParameterError
from repro.experiments.runner import (
    GroundTruthCache,
    QueryOutcome,
    run_entropy_filter,
    run_entropy_top_k,
    run_mi_filter,
    run_mi_top_k,
)
from repro.synth.datasets import DATASETS, dataset_summary, load_dataset

__all__ = [
    "FigureSpec",
    "FigurePoint",
    "FigureRun",
    "FIGURES",
    "run_figure",
    "run_table2",
]

_TOPK_GRID = (1, 2, 4, 8, 10)
_ENTROPY_ETA_GRID = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
_MI_ETA_GRID = (0.1, 0.2, 0.3, 0.4, 0.5)
_EPSILON_GRID = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5)
_ALL_ALGOS = ("swope", "entropy_rank", "exact")


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one paper figure."""

    figure_id: str
    title: str
    query: str  # entropy_topk | entropy_filter | mi_topk | mi_filter
    sweep: str  # "k" | "eta" | "epsilon"
    x_values: tuple[float, ...]
    algorithms: tuple[str, ...]
    epsilon: float | None = None  # fixed ε (None for ε sweeps)
    fixed_k: int | None = None
    fixed_eta: float | None = None

    def x_label(self) -> str:
        return {"k": "k", "eta": "eta", "epsilon": "epsilon"}[self.sweep]


@dataclass
class FigurePoint:
    """One (dataset, x, algorithm) measurement, averaged over MI targets."""

    dataset: str
    x: float
    algorithm: str
    seconds: float
    cells_scanned: float
    sample_fraction: float
    accuracy: float
    extra: dict[str, float] = field(default_factory=dict)


@dataclass
class FigureRun:
    """All points of one figure execution plus run configuration."""

    spec: FigureSpec
    datasets: list[str]
    scale: float
    num_targets: int
    points: list[FigurePoint] = field(default_factory=list)

    def series(
        self, dataset: str, algorithm: str, metric: str = "seconds"
    ) -> list[tuple[float, float]]:
        """(x, metric) pairs of one curve, in sweep order."""
        return [
            (p.x, getattr(p, metric))
            for p in self.points
            if p.dataset == dataset and p.algorithm == algorithm
        ]

    def speedup(
        self, dataset: str, baseline: str, x: float, metric: str = "cells_scanned"
    ) -> float:
        """``baseline / swope`` ratio of a cost metric at one sweep point."""
        base = [
            p
            for p in self.points
            if p.dataset == dataset and p.algorithm == baseline and p.x == x
        ]
        ours = [
            p
            for p in self.points
            if p.dataset == dataset and p.algorithm == "swope" and p.x == x
        ]
        if not base or not ours:
            raise ParameterError(
                f"no measurements for {dataset!r} at x={x} ({baseline} vs swope)"
            )
        denom = getattr(ours[0], metric)
        return getattr(base[0], metric) / denom if denom else float("inf")


FIGURES: dict[str, FigureSpec] = {
    "fig1": FigureSpec(
        "fig1", "Varying k: top-k on empirical entropy (query time)",
        "entropy_topk", "k", _TOPK_GRID, _ALL_ALGOS, epsilon=0.1,
    ),
    "fig2": FigureSpec(
        "fig2", "Varying k: top-k on empirical entropy (accuracy)",
        "entropy_topk", "k", _TOPK_GRID, _ALL_ALGOS, epsilon=0.1,
    ),
    "fig3": FigureSpec(
        "fig3", "Varying eta: filtering on empirical entropy (query time)",
        "entropy_filter", "eta", _ENTROPY_ETA_GRID, _ALL_ALGOS, epsilon=0.05,
    ),
    "fig4": FigureSpec(
        "fig4", "Varying eta: filtering on empirical entropy (accuracy)",
        "entropy_filter", "eta", _ENTROPY_ETA_GRID, _ALL_ALGOS, epsilon=0.05,
    ),
    "fig5": FigureSpec(
        "fig5", "Varying k: top-k on empirical mutual info (query time)",
        "mi_topk", "k", _TOPK_GRID, _ALL_ALGOS, epsilon=0.5,
    ),
    "fig6": FigureSpec(
        "fig6", "Varying k: top-k on empirical mutual info (accuracy)",
        "mi_topk", "k", _TOPK_GRID, _ALL_ALGOS, epsilon=0.5,
    ),
    "fig7": FigureSpec(
        "fig7", "Varying eta: filtering on empirical mutual info (query time)",
        "mi_filter", "eta", _MI_ETA_GRID, _ALL_ALGOS, epsilon=0.5,
    ),
    "fig8": FigureSpec(
        "fig8", "Varying eta: filtering on empirical mutual info (accuracy)",
        "mi_filter", "eta", _MI_ETA_GRID, _ALL_ALGOS, epsilon=0.5,
    ),
    "fig9": FigureSpec(
        "fig9", "Tuning epsilon: top-k on empirical entropy (k = 4)",
        "entropy_topk", "epsilon", _EPSILON_GRID, ("swope",), fixed_k=4,
    ),
    "fig10": FigureSpec(
        "fig10", "Tuning epsilon: filtering on empirical entropy (eta = 2)",
        "entropy_filter", "epsilon", _EPSILON_GRID, ("swope",), fixed_eta=2.0,
    ),
    "fig11": FigureSpec(
        "fig11", "Tuning epsilon: top-k on empirical mutual info (k = 4)",
        "mi_topk", "epsilon", _EPSILON_GRID, ("swope",), fixed_k=4,
    ),
    "fig12": FigureSpec(
        "fig12", "Tuning epsilon: filtering on empirical mutual info (eta = 0.3)",
        "mi_filter", "epsilon", _EPSILON_GRID, ("swope",), fixed_eta=0.3,
    ),
}


def _run_point(
    spec: FigureSpec,
    store,
    targets: list[str],
    algorithm: str,
    x: float,
    seed: int,
    truth: GroundTruthCache,
) -> FigurePoint:
    """Execute one (algorithm, x) point; MI queries average over targets."""
    if spec.sweep == "epsilon":
        epsilon = float(x)
        k = spec.fixed_k
        eta = spec.fixed_eta
    else:
        epsilon = spec.epsilon if spec.epsilon is not None else 0.1
        k = int(x) if spec.sweep == "k" else spec.fixed_k
        eta = float(x) if spec.sweep == "eta" else spec.fixed_eta

    outcomes: list[QueryOutcome] = []
    if spec.query == "entropy_topk":
        assert k is not None
        outcomes.append(
            run_entropy_top_k(store, algorithm, k, epsilon=epsilon, seed=seed, truth=truth)
        )
    elif spec.query == "entropy_filter":
        assert eta is not None
        outcomes.append(
            run_entropy_filter(store, algorithm, eta, epsilon=epsilon, seed=seed, truth=truth)
        )
    elif spec.query == "mi_topk":
        assert k is not None
        for t_index, target in enumerate(targets):
            outcomes.append(
                run_mi_top_k(
                    store, algorithm, target, k,
                    epsilon=epsilon, seed=seed + t_index, truth=truth,
                )
            )
    elif spec.query == "mi_filter":
        assert eta is not None
        for t_index, target in enumerate(targets):
            outcomes.append(
                run_mi_filter(
                    store, algorithm, target, eta,
                    epsilon=epsilon, seed=seed + t_index, truth=truth,
                )
            )
    else:  # pragma: no cover - registry is closed
        raise ParameterError(f"unknown query kind {spec.query!r}")

    extra: dict[str, float] = {}
    for key in outcomes[0].extra:
        extra[key] = mean(o.extra.get(key, 0.0) for o in outcomes)
    return FigurePoint(
        dataset="",  # filled by caller
        x=float(x),
        algorithm=algorithm,
        seconds=mean(o.wall_seconds for o in outcomes),
        cells_scanned=mean(o.cells_scanned for o in outcomes),
        sample_fraction=mean(o.sample_fraction for o in outcomes),
        accuracy=mean(o.accuracy for o in outcomes),
        extra=extra,
    )


def run_figure(
    figure_id: str,
    *,
    datasets: list[str] | None = None,
    scale: float = 1.0,
    num_targets: int = 2,
    seed: int = 0,
    target_mode: str = "engineered",
) -> FigureRun:
    """Execute one paper figure over the synthetic dataset analogues.

    Parameters
    ----------
    figure_id:
        ``"fig1"`` … ``"fig12"`` (see :data:`FIGURES`).
    datasets:
        Registry keys to run on (default: all four).
    scale:
        Row-count multiplier for dataset generation.
    num_targets:
        MI queries are averaged over this many target attributes (the
        paper uses 20 random targets; the defaults here keep single-core
        run times sane — raise it for closer replication).
    seed:
        Base seed for the samplers.
    target_mode:
        ``"engineered"`` (default) uses the datasets' planted MI group
        bases; ``"random"`` mimics the paper's random target choice —
        see :meth:`repro.synth.datasets.SyntheticDataset.random_targets`
        for why that regime is degenerate on these analogues.
    """
    if target_mode not in ("engineered", "random"):
        raise ParameterError(f"unknown target_mode {target_mode!r}")
    if figure_id not in FIGURES:
        raise ParameterError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        )
    spec = FIGURES[figure_id]
    keys = list(datasets) if datasets is not None else sorted(DATASETS)
    run = FigureRun(spec=spec, datasets=keys, scale=scale, num_targets=num_targets)
    for key in keys:
        dataset = load_dataset(key, scale=scale)
        if target_mode == "random":
            targets = list(dataset.random_targets(max(1, num_targets), seed=seed))
        else:
            targets = list(dataset.mi_targets)[: max(1, num_targets)]
        truth = GroundTruthCache()
        for x in spec.x_values:
            for algorithm in spec.algorithms:
                point = _run_point(
                    spec, dataset.store, targets, algorithm, x, seed, truth
                )
                point.dataset = key
                run.points.append(point)
    return run


def run_table2(*, scale: float = 1.0) -> list[dict[str, object]]:
    """The Table 2 analogue: dataset shapes (ours vs. the paper's)."""
    return dataset_summary(scale=scale)
