"""Single-query experiment runner with ground-truth caching.

Bridges the algorithms to the figure harness: runs one (algorithm, query,
parameter) combination on one dataset, measures wall-clock and cells
scanned, and scores accuracy against cached exact ground truth. Used by
:mod:`repro.experiments.figures` and by the pytest benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    entropy_filter,
    entropy_filter_mutual_information,
    entropy_rank_top_k,
    entropy_rank_top_k_mutual_information,
    exact_entropies,
    exact_filter_entropy,
    exact_filter_mutual_information,
    exact_mutual_informations,
    exact_top_k_entropy,
    exact_top_k_mutual_information,
)
from repro.core import (
    swope_filter_entropy,
    swope_filter_mutual_information,
    swope_top_k_entropy,
    swope_top_k_mutual_information,
)
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.experiments.accuracy import filter_precision_recall, top_k_accuracy
from repro.exceptions import ParameterError

__all__ = [
    "ALGORITHMS",
    "GroundTruthCache",
    "QueryOutcome",
    "run_entropy_top_k",
    "run_entropy_filter",
    "run_mi_top_k",
    "run_mi_filter",
]

#: Algorithm labels used throughout figures and benchmarks.
ALGORITHMS = ("swope", "entropy_rank", "exact")


def _make_sampler(
    store: ColumnStore, seed: int | None, sequential: bool
) -> PrefixSampler:
    """Build the sampler an experiment run uses.

    The experiment harness defaults to ``sequential=True``, mirroring the
    paper's setup ("SWOPE stores data by columnar layout and do sequential
    sampling", Section 6.1): the synthetic datasets emit i.i.d. rows, so a
    physical prefix is statistically equivalent to a shuffled prefix and
    avoids the gather cost of permuted reads. Pass ``sequential=False`` to
    exercise the shuffled path (the statistical tests do).
    """
    return PrefixSampler(store, seed=seed, sequential=sequential)


class GroundTruthCache:
    """Memoised exact scores per store (entropy) and per (store, target) (MI).

    Exact full scans are the expensive part of accuracy measurement; one
    instance of this cache is shared across all points of a figure so each
    dataset pays for ground truth once.
    """

    def __init__(self) -> None:
        self._entropy: dict[int, dict[str, float]] = {}
        self._mi: dict[tuple[int, str], dict[str, float]] = {}

    def entropies(self, store: ColumnStore) -> dict[str, float]:
        key = id(store)
        if key not in self._entropy:
            self._entropy[key] = exact_entropies(store)
        return self._entropy[key]

    def mutual_informations(self, store: ColumnStore, target: str) -> dict[str, float]:
        key = (id(store), target)
        if key not in self._mi:
            self._mi[key] = exact_mutual_informations(store, target)
        return self._mi[key]


@dataclass
class QueryOutcome:
    """One measured query execution.

    ``accuracy`` is the paper's metric: top-k hit fraction for top-k
    queries, recall of the exact answer set for filtering queries (with
    precision recorded separately in ``extra``).
    """

    algorithm: str
    query: str
    parameter: float
    wall_seconds: float
    cells_scanned: int
    sample_fraction: float
    accuracy: float
    answer: list[str]
    extra: dict[str, float] = field(default_factory=dict)


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in ALGORITHMS:
        raise ParameterError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )


def run_entropy_top_k(
    store: ColumnStore,
    algorithm: str,
    k: int,
    *,
    epsilon: float = 0.1,
    seed: int | None = 0,
    truth: GroundTruthCache | None = None,
    sequential: bool = True,
) -> QueryOutcome:
    """Run one entropy top-k query and score it against exact ground truth."""
    _check_algorithm(algorithm)
    truth = truth or GroundTruthCache()
    if algorithm == "swope":
        result = swope_top_k_entropy(
            store, k, epsilon=epsilon,
            sampler=_make_sampler(store, seed, sequential),
        )
    elif algorithm == "entropy_rank":
        result = entropy_rank_top_k(
            store, k, sampler=_make_sampler(store, seed, sequential)
        )
    else:
        result = exact_top_k_entropy(store, k)
    scores = truth.entropies(store)
    accuracy = top_k_accuracy(result.attributes, scores, k)
    return QueryOutcome(
        algorithm=algorithm,
        query="entropy_topk",
        parameter=float(k),
        wall_seconds=result.stats.wall_seconds,
        cells_scanned=result.stats.cells_scanned,
        sample_fraction=result.stats.sample_fraction,
        accuracy=accuracy,
        answer=list(result.attributes),
    )


def run_entropy_filter(
    store: ColumnStore,
    algorithm: str,
    threshold: float,
    *,
    epsilon: float = 0.05,
    seed: int | None = 0,
    truth: GroundTruthCache | None = None,
    sequential: bool = True,
) -> QueryOutcome:
    """Run one entropy filtering query and score it against ground truth."""
    _check_algorithm(algorithm)
    truth = truth or GroundTruthCache()
    if algorithm == "swope":
        result = swope_filter_entropy(
            store, threshold, epsilon=epsilon,
            sampler=_make_sampler(store, seed, sequential),
        )
    elif algorithm == "entropy_rank":
        result = entropy_filter(
            store, threshold, sampler=_make_sampler(store, seed, sequential)
        )
    else:
        result = exact_filter_entropy(store, threshold)
    scores = truth.entropies(store)
    quality = filter_precision_recall(result.attributes, scores, threshold)
    return QueryOutcome(
        algorithm=algorithm,
        query="entropy_filter",
        parameter=float(threshold),
        wall_seconds=result.stats.wall_seconds,
        cells_scanned=result.stats.cells_scanned,
        sample_fraction=result.stats.sample_fraction,
        accuracy=quality.recall,
        answer=list(result.attributes),
        extra={"precision": quality.precision, "f1": quality.f1},
    )


def run_mi_top_k(
    store: ColumnStore,
    algorithm: str,
    target: str,
    k: int,
    *,
    epsilon: float = 0.5,
    seed: int | None = 0,
    truth: GroundTruthCache | None = None,
    sequential: bool = True,
) -> QueryOutcome:
    """Run one MI top-k query against ``target`` and score it."""
    _check_algorithm(algorithm)
    truth = truth or GroundTruthCache()
    if algorithm == "swope":
        result = swope_top_k_mutual_information(
            store, target, k, epsilon=epsilon,
            sampler=_make_sampler(store, seed, sequential),
        )
    elif algorithm == "entropy_rank":
        result = entropy_rank_top_k_mutual_information(
            store, target, k, sampler=_make_sampler(store, seed, sequential)
        )
    else:
        result = exact_top_k_mutual_information(store, target, k)
    scores = truth.mutual_informations(store, target)
    accuracy = top_k_accuracy(result.attributes, scores, k)
    return QueryOutcome(
        algorithm=algorithm,
        query="mi_topk",
        parameter=float(k),
        wall_seconds=result.stats.wall_seconds,
        cells_scanned=result.stats.cells_scanned,
        sample_fraction=result.stats.sample_fraction,
        accuracy=accuracy,
        answer=list(result.attributes),
        extra={"target_is": 1.0},
    )


def run_mi_filter(
    store: ColumnStore,
    algorithm: str,
    target: str,
    threshold: float,
    *,
    epsilon: float = 0.5,
    seed: int | None = 0,
    truth: GroundTruthCache | None = None,
    sequential: bool = True,
) -> QueryOutcome:
    """Run one MI filtering query against ``target`` and score it."""
    _check_algorithm(algorithm)
    truth = truth or GroundTruthCache()
    if algorithm == "swope":
        result = swope_filter_mutual_information(
            store, target, threshold, epsilon=epsilon,
            sampler=_make_sampler(store, seed, sequential),
        )
    elif algorithm == "entropy_rank":
        result = entropy_filter_mutual_information(
            store, target, threshold,
            sampler=_make_sampler(store, seed, sequential),
        )
    else:
        result = exact_filter_mutual_information(store, target, threshold)
    scores = truth.mutual_informations(store, target)
    quality = filter_precision_recall(result.attributes, scores, threshold)
    return QueryOutcome(
        algorithm=algorithm,
        query="mi_filter",
        parameter=float(threshold),
        wall_seconds=result.stats.wall_seconds,
        cells_scanned=result.stats.cells_scanned,
        sample_fraction=result.stats.sample_fraction,
        accuracy=quality.recall,
        answer=list(result.attributes),
        extra={"precision": quality.precision, "f1": quality.f1},
    )
