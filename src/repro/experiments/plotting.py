"""Dependency-free SVG rendering of figure runs.

The paper presents its evaluation as per-dataset line charts (log-scale
query time over the sweep parameter, plus accuracy panels). matplotlib is
not a dependency of this library, so this module writes standalone SVG
directly: one panel per dataset, one polyline per algorithm, log or
linear y axis, tick labels, and a legend. The output opens in any
browser and diffs cleanly in version control.

Entry points:

* :func:`figure_svg` — render one :class:`~repro.experiments.figures.FigureRun`
  metric ("seconds", "cells_scanned", or "accuracy") to an SVG string;
* :func:`save_figure_svg` — same, to a file (used by
  ``repro figure ... --svg out.svg``).
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.durability.atomic import atomic_write_text
from repro.exceptions import ParameterError
from repro.experiments.figures import FigureRun

__all__ = ["figure_svg", "save_figure_svg"]

#: Stroke colours per algorithm (paper-ish: ours, competitor, exact).
_COLORS = {
    "swope": "#d62728",
    "entropy_rank": "#1f77b4",
    "exact": "#2ca02c",
}
_FALLBACK_COLORS = ("#9467bd", "#8c564b", "#e377c2", "#7f7f7f")

_PANEL_WIDTH = 320
_PANEL_HEIGHT = 240
_MARGIN_LEFT = 58
_MARGIN_BOTTOM = 42
_MARGIN_TOP = 30
_MARGIN_RIGHT = 12

_METRICS = ("seconds", "cells_scanned", "accuracy")


def _color(algorithm: str, index: int) -> str:
    return _COLORS.get(algorithm, _FALLBACK_COLORS[index % len(_FALLBACK_COLORS)])


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:g}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:g}k"
    if magnitude >= 0.01:
        return f"{value:g}"
    return f"{value:.0e}"


def _log_ticks(lo: float, hi: float) -> list[float]:
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**e for e in range(first, last + 1)]


def _linear_ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    if hi <= lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


class _Panel:
    """One dataset's chart panel; accumulates SVG elements."""

    def __init__(
        self,
        origin_x: float,
        title: str,
        x_values: list[float],
        y_range: tuple[float, float],
        log_y: bool,
    ) -> None:
        self.ox = origin_x
        self.title = title
        self.xs = x_values
        self.lo, self.hi = y_range
        self.log_y = log_y
        self.elements: list[str] = []
        self.plot_w = _PANEL_WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
        self.plot_h = _PANEL_HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def x_pos(self, x: float) -> float:
        # Sweep values are plotted at even spacing (the paper's figures
        # treat k and eta grids categorically).
        index = self.xs.index(x)
        if len(self.xs) == 1:
            frac = 0.5
        else:
            frac = index / (len(self.xs) - 1)
        return self.ox + _MARGIN_LEFT + frac * self.plot_w

    def y_pos(self, y: float) -> float:
        if self.log_y:
            frac = (math.log10(y) - math.log10(self.lo)) / (
                math.log10(self.hi) - math.log10(self.lo)
            )
        else:
            frac = (y - self.lo) / (self.hi - self.lo) if self.hi > self.lo else 0.5
        frac = min(1.0, max(0.0, frac))
        return _MARGIN_TOP + (1.0 - frac) * self.plot_h

    def draw_frame(self) -> None:
        left = self.ox + _MARGIN_LEFT
        right = self.ox + _PANEL_WIDTH - _MARGIN_RIGHT
        top = _MARGIN_TOP
        bottom = _MARGIN_TOP + self.plot_h
        self.elements.append(
            f'<rect x="{left}" y="{top}" width="{right - left}"'
            f' height="{bottom - top}" fill="none" stroke="#444"/>'
        )
        self.elements.append(
            f'<text x="{(left + right) / 2}" y="{top - 10}" text-anchor="middle"'
            f' font-size="13" font-weight="bold">{self.title}</text>'
        )
        ticks = (
            _log_ticks(self.lo, self.hi)
            if self.log_y
            else _linear_ticks(self.lo, self.hi)
        )
        for tick in ticks:
            if not self.lo <= tick <= self.hi:
                continue
            y = self.y_pos(tick)
            self.elements.append(
                f'<line x1="{left}" y1="{y}" x2="{right}" y2="{y}"'
                f' stroke="#ddd" stroke-width="0.7"/>'
            )
            self.elements.append(
                f'<text x="{left - 5}" y="{y + 4}" text-anchor="end"'
                f' font-size="10">{_format_tick(tick)}</text>'
            )
        for x in self.xs:
            px = self.x_pos(x)
            self.elements.append(
                f'<text x="{px}" y="{bottom + 16}" text-anchor="middle"'
                f' font-size="10">{x:g}</text>'
            )

    def draw_series(self, points: list[tuple[float, float]], color: str) -> None:
        coords = " ".join(
            f"{self.x_pos(x):.1f},{self.y_pos(y):.1f}" for x, y in points
        )
        self.elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}"'
            f' stroke-width="2"/>'
        )
        for x, y in points:
            self.elements.append(
                f'<circle cx="{self.x_pos(x):.1f}" cy="{self.y_pos(y):.1f}"'
                f' r="3" fill="{color}"/>'
            )


def figure_svg(run: FigureRun, metric: str = "seconds") -> str:
    """Render one figure run as a standalone SVG document string.

    Parameters
    ----------
    run:
        An executed figure.
    metric:
        ``"seconds"`` or ``"cells_scanned"`` (log y-axis) or
        ``"accuracy"`` (linear y-axis in [0, 1.05]).
    """
    if metric not in _METRICS:
        raise ParameterError(f"unknown metric {metric!r}; expected one of {_METRICS}")
    if not run.points:
        raise ParameterError("figure run holds no measurements")
    log_y = metric != "accuracy"
    values = [getattr(p, metric) for p in run.points]
    if log_y:
        positive = [v for v in values if v > 0]
        if not positive:
            raise ParameterError(f"no positive values to plot for {metric!r}")
        lo, hi = min(positive) / 1.5, max(positive) * 1.5
    else:
        lo, hi = 0.0, 1.05
    x_values = [float(x) for x in run.spec.x_values]
    width = _PANEL_WIDTH * len(run.datasets)
    height = _PANEL_HEIGHT + 34  # room for the legend row
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" font-family="sans-serif">',
        f'<text x="{width / 2}" y="14" text-anchor="middle" font-size="13">'
        f"{run.spec.figure_id}: {run.spec.title} — {metric}</text>",
    ]
    for panel_index, dataset in enumerate(run.datasets):
        panel = _Panel(
            panel_index * _PANEL_WIDTH, dataset, x_values, (lo, hi), log_y
        )
        panel.draw_frame()
        for algo_index, algorithm in enumerate(run.spec.algorithms):
            series = [
                (x, y if not log_y else max(y, lo))
                for x, y in run.series(dataset, algorithm, metric)
            ]
            if series:
                panel.draw_series(series, _color(algorithm, algo_index))
        parts.extend(panel.elements)
        parts.append(
            f'<text x="{panel_index * _PANEL_WIDTH + _PANEL_WIDTH / 2}"'
            f' y="{_PANEL_HEIGHT - 4}" text-anchor="middle" font-size="11">'
            f"{run.spec.x_label()}</text>"
        )
    legend_y = _PANEL_HEIGHT + 18
    legend_x = 20.0
    for algo_index, algorithm in enumerate(run.spec.algorithms):
        color = _color(algorithm, algo_index)
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 22}"'
            f' y2="{legend_y}" stroke="{color}" stroke-width="3"/>'
        )
        parts.append(
            f'<text x="{legend_x + 27}" y="{legend_y + 4}" font-size="12">'
            f"{algorithm}</text>"
        )
        legend_x += 40 + 8 * len(algorithm)
    parts.append("</svg>")
    return "\n".join(parts)


def save_figure_svg(run: FigureRun, path: str | Path, metric: str = "seconds") -> None:
    """Write :func:`figure_svg` output to ``path``."""
    atomic_write_text(Path(path), figure_svg(run, metric))
