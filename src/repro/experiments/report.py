"""Plain-text rendering of experiment results (paper-style series).

The paper presents each figure as per-dataset curves over the sweep
parameter. :func:`render_figure` prints the same information as aligned
text tables — one block per dataset, one row per sweep value, one column
per algorithm — for the time metric, the cells-scanned metric, and the
accuracy metric, plus SWOPE speedup columns.
"""

from __future__ import annotations

from repro.experiments.figures import FigureRun
from repro.exceptions import ParameterError

__all__ = ["format_table", "render_figure", "render_table2"]


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Align a list of string rows under headers with a rule line."""
    if any(len(row) != len(headers) for row in rows):
        raise ParameterError("all rows must have as many cells as the header")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_cells(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def render_figure(run: FigureRun) -> str:
    """Render one figure run as per-dataset text tables."""
    spec = run.spec
    blocks: list[str] = [
        f"== {spec.figure_id}: {spec.title} ==",
        f"(datasets scaled x{run.scale:g}; MI metrics averaged over"
        f" {run.num_targets} target(s))",
    ]
    algos = list(spec.algorithms)
    show_speedup = "swope" in algos and len(algos) > 1
    for dataset in run.datasets:
        headers = [spec.x_label()]
        for algo in algos:
            headers.append(f"{algo}[s]")
        for algo in algos:
            headers.append(f"{algo}[cells]")
        for algo in algos:
            headers.append(f"{algo}[acc]")
        if show_speedup:
            for baseline in algos:
                if baseline != "swope":
                    headers.append(f"x vs {baseline}")
        rows: list[list[str]] = []
        for x in spec.x_values:
            points = {
                p.algorithm: p
                for p in run.points
                if p.dataset == dataset and p.x == float(x)
            }
            row = [f"{x:g}"]
            row.extend(_fmt_seconds(points[a].seconds) for a in algos)
            row.extend(_fmt_cells(points[a].cells_scanned) for a in algos)
            row.extend(f"{points[a].accuracy:.3f}" for a in algos)
            if show_speedup:
                ours = points["swope"].cells_scanned or 1.0
                for baseline in algos:
                    if baseline != "swope":
                        row.append(f"{points[baseline].cells_scanned / ours:.1f}")
            rows.append(row)
        blocks.append(f"-- dataset: {dataset} --")
        blocks.append(format_table(headers, rows))
    return "\n".join(blocks)


def render_table2(rows: list[dict[str, object]]) -> str:
    """Render the Table 2 analogue (dataset summary, ours vs. paper)."""
    headers = ["dataset", "rows", "columns", "paper rows", "paper columns"]
    body = [
        [
            str(r["dataset"]),
            f"{r['rows']:,}",
            str(r["columns"]),
            f"{r['paper_rows']:,}",
            str(r["paper_columns"]),
        ]
        for r in rows
    ]
    return "== Table 2: summary of datasets (synthetic analogues) ==\n" + format_table(
        headers, body
    )
