"""The census workload track: scenarios → plans → accuracy vs. exact.

The figure harness (:mod:`repro.experiments.figures`) reproduces the
paper's evaluation on clean parametric datasets. This module is the
*second* track: it drives the census-shaped scenarios of
:mod:`repro.synth.census` — Zipf-skewed identifiers, correlated
demographic groups, missing/noised extracts, supports straddling the
u = 1000 cutoff — end to end through the real production path:

1. generate the manifested dataset and verify its sha256 round-trip;
2. apply the paper's preprocessing
   (:func:`repro.data.filters.partition_by_support`), keeping account of
   what was dropped;
3. compile the scenario's declarative query batch into a
   :class:`~repro.core.plan.QueryPlan` and execute it on a shared
   :class:`~repro.core.plan.PlanExecutor`;
4. score every answer against exact full-scan baselines — set accuracy
   (the paper's Figures 2/4/6/8 methodology) *and* the Definition 5/6
   guarantee contracts, reporting the empirical guarantee-violation rate
   against the per-query failure budget ``p_f``;
5. optionally run the applications layer (feature selection, the
   entropy decision tree) on the same scenarios.

Everything here is deterministic given ``(scenario, seed, scale,
backend)`` except wall-clock fields, which reports carry for context but
tests must not compare.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

from repro.applications.decision_tree import EntropyTreeClassifier
from repro.applications.feature_selection import top_relevance_select
from repro.core.engine import default_failure_probability
from repro.core.plan import PlanExecutor, QueryPlan, QuerySpec, plan_queries
from repro.core.results import FilterResult, TopKResult
from repro.data.column_store import ColumnStore
from repro.data.filters import partition_by_support
from repro.durability.atomic import atomic_write_text
from repro.exceptions import ParameterError
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
    filter_precision_recall,
    top_k_accuracy,
)
from repro.experiments.runner import (
    GroundTruthCache,
    exact_filter_entropy,
    exact_filter_mutual_information,
    exact_top_k_entropy,
    exact_top_k_mutual_information,
)
from repro.synth.census import (
    SCENARIOS,
    CensusDataset,
    CensusScenario,
    generate_census,
    get_scenario,
    verify_manifest,
)

__all__ = [
    "ScenarioQueryReport",
    "ScenarioOutcome",
    "CensusTrackReport",
    "census_plan",
    "run_scenario",
    "run_census_track",
    "run_census_applications",
    "render_track",
    "save_track_report",
]


# ----------------------------------------------------------------------
# Report shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioQueryReport:
    """One query of a scenario plan, scored against its exact baseline.

    ``accuracy`` is the paper's headline number: top-k set accuracy for
    top-k queries, recall of the exact answer set for filters.
    ``violations`` lists Definition 5/6 contract breaches (empty =
    guarantee held). ``cells`` is the query's *incremental* share of the
    shared scan; ``exact_cells`` is what the exact baseline paid for the
    same answer.
    """

    name: str
    kind: str
    score: str
    epsilon: float
    answer: tuple[str, ...]
    exact_answer: tuple[str, ...]
    accuracy: float
    precision: float
    violations: tuple[str, ...]
    cells: int
    exact_cells: int

    @property
    def guarantee_held(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (scenario, seed) execution of the census track."""

    scenario: str
    seed: int
    scale: float
    backend: str
    num_rows: int
    fingerprint: str
    kept_columns: tuple[str, ...]
    dropped_columns: tuple[str, ...]
    failure_probability: float
    queries: tuple[ScenarioQueryReport, ...]
    cells_scanned: int
    exact_cells: int
    wall_seconds: float
    exact_wall_seconds: float

    @property
    def violation_count(self) -> int:
        return sum(1 for q in self.queries if q.violations)


@dataclass(frozen=True)
class CensusTrackReport:
    """Aggregate of the census track over scenarios × seeds.

    ``violation_rate`` is the empirical fraction of queries whose
    returned answer broke its Definition 5/6 contract; the paper's
    guarantee says this stays below ``max_failure_probability`` (the
    largest per-query ``p_f`` any outcome ran with — ``1/N`` by
    default).
    """

    backend: str
    scale: float
    seeds: tuple[int, ...]
    scenarios: tuple[str, ...]
    outcomes: tuple[ScenarioOutcome, ...] = field(repr=False)

    @property
    def total_queries(self) -> int:
        return sum(len(o.queries) for o in self.outcomes)

    @property
    def violation_count(self) -> int:
        return sum(o.violation_count for o in self.outcomes)

    @property
    def violation_rate(self) -> float:
        total = self.total_queries
        return self.violation_count / total if total else 0.0

    @property
    def max_failure_probability(self) -> float:
        return max((o.failure_probability for o in self.outcomes), default=0.0)


# ----------------------------------------------------------------------
# Plan compilation and scoring
# ----------------------------------------------------------------------
def census_plan(scenario: CensusScenario, store: ColumnStore) -> QueryPlan:
    """Compile a scenario's declarative query batch against ``store``."""
    specs = [QuerySpec.from_dict(entry) for entry in scenario.queries]
    return plan_queries(store, specs)


def _restricted(
    scores: Mapping[str, float], candidates: Sequence[str]
) -> dict[str, float]:
    """Exact scores limited to the plan-resolved candidate set."""
    return {name: float(scores[name]) for name in candidates}


def _score_query(
    spec: QuerySpec,
    result: Union[TopKResult, FilterResult],
    store: ColumnStore,
    truth: GroundTruthCache,
    cells: int,
) -> ScenarioQueryReport:
    assert spec.attributes is not None and spec.epsilon is not None
    candidates = list(spec.attributes)
    if spec.score == "entropy":
        exact_scores = _restricted(truth.entropies(store), candidates)
    else:
        assert spec.target is not None
        exact_scores = _restricted(
            truth.mutual_informations(store, spec.target), candidates
        )
    if isinstance(result, TopKResult):
        assert spec.k is not None
        accuracy = top_k_accuracy(
            list(result.attributes), exact_scores, spec.k
        )
        precision = accuracy
        violations = tuple(
            check_top_k_guarantee(result, exact_scores, spec.epsilon)
        )
        if spec.score == "entropy":
            exact_result: Union[TopKResult, FilterResult] = exact_top_k_entropy(
                store, spec.k, attributes=candidates
            )
        else:
            assert spec.target is not None
            exact_result = exact_top_k_mutual_information(
                store, spec.target, spec.k, candidates=candidates
            )
    else:
        assert spec.threshold is not None
        pr = filter_precision_recall(
            list(result.attributes), exact_scores, spec.threshold
        )
        accuracy = pr.recall
        precision = pr.precision
        violations = tuple(
            check_filter_guarantee(result, exact_scores, spec.epsilon)
        )
        if spec.score == "entropy":
            exact_result = exact_filter_entropy(
                store, spec.threshold, attributes=candidates
            )
        else:
            assert spec.target is not None
            exact_result = exact_filter_mutual_information(
                store, spec.target, spec.threshold, candidates=candidates
            )
    assert spec.name is not None
    return ScenarioQueryReport(
        name=spec.name,
        kind=spec.kind,
        score=spec.score,
        epsilon=float(spec.epsilon),
        answer=tuple(result.attributes),
        exact_answer=tuple(exact_result.attributes),
        accuracy=accuracy,
        precision=precision,
        violations=violations,
        cells=cells,
        exact_cells=exact_result.stats.cells_scanned,
    )


def run_scenario(
    scenario: Union[str, CensusScenario],
    *,
    seed: int = 0,
    scale: float = 1.0,
    backend: str = "numpy",
    truth: GroundTruthCache | None = None,
    dataset: CensusDataset | None = None,
) -> ScenarioOutcome:
    """Run one scenario end to end and score it against exact baselines.

    Parameters
    ----------
    scenario:
        A registry key or a :class:`~repro.synth.census.CensusScenario`.
    seed:
        Drives both generation and the executor's shuffle, so one number
        pins the whole run.
    scale:
        Row-count multiplier forwarded to generation.
    backend:
        Counting backend name for the shared sampler.
    truth:
        Optional shared :class:`~repro.experiments.runner.GroundTruthCache`
        (pass one across repeated calls on the same dataset object).
    dataset:
        Pre-generated dataset to reuse (must match ``scenario``/``seed``/
        ``scale``); generated when omitted.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if dataset is None:
        dataset = generate_census(scenario, seed=seed, scale=scale)
    verify_manifest(dataset.manifest, dataset.store)
    kept, dropped = partition_by_support(dataset.store)
    plan = census_plan(scenario, kept)
    executor = PlanExecutor(kept, seed=seed, backend=backend)
    started = time.perf_counter()
    plan_result = executor.execute(plan)
    wall = time.perf_counter() - started
    if truth is None:
        truth = GroundTruthCache()
    exact_started = time.perf_counter()
    reports = []
    for spec in plan.specs:
        assert spec.name is not None
        reports.append(
            _score_query(
                spec,
                plan_result[spec.name],
                kept,
                truth,
                plan_result.stats.per_query_cells.get(spec.name, 0),
            )
        )
    exact_wall = time.perf_counter() - exact_started
    return ScenarioOutcome(
        scenario=scenario.key,
        seed=seed,
        scale=float(scale),
        backend=backend,
        num_rows=kept.num_rows,
        fingerprint=dataset.fingerprint,
        kept_columns=kept.attributes,
        dropped_columns=dropped,
        failure_probability=default_failure_probability(kept.num_rows),
        queries=tuple(reports),
        cells_scanned=plan_result.stats.cells_scanned,
        exact_cells=sum(r.exact_cells for r in reports),
        wall_seconds=wall,
        exact_wall_seconds=exact_wall,
    )


def run_census_track(
    scenarios: Iterable[Union[str, CensusScenario]] | None = None,
    *,
    seeds: Sequence[int] = (0,),
    scale: float = 1.0,
    backend: str = "numpy",
) -> CensusTrackReport:
    """Run the full census track: every scenario × every seed.

    Ground truth is shared per dataset: each (scenario, seed) pair
    generates once and scores all its queries against one exact scan.
    """
    if not seeds:
        raise ParameterError("run_census_track needs at least one seed")
    resolved = [
        get_scenario(s) if isinstance(s, str) else s
        for s in (scenarios if scenarios is not None else SCENARIOS)
    ]
    if not resolved:
        raise ParameterError("run_census_track needs at least one scenario")
    outcomes = []
    for scenario in resolved:
        for seed in seeds:
            outcomes.append(
                run_scenario(scenario, seed=seed, scale=scale, backend=backend)
            )
    return CensusTrackReport(
        backend=backend,
        scale=float(scale),
        seeds=tuple(int(s) for s in seeds),
        scenarios=tuple(s.key for s in resolved),
        outcomes=tuple(outcomes),
    )


# ----------------------------------------------------------------------
# Applications layer on census data
# ----------------------------------------------------------------------
def run_census_applications(
    scenario: Union[str, CensusScenario] = "correlated",
    *,
    seed: int = 0,
    scale: float = 1.0,
    num_features: int = 3,
    max_depth: int = 2,
) -> dict[str, object]:
    """Drive the applications layer end to end on a census scenario.

    Runs SWOPE-backed and exact feature selection against the scenario's
    first MI target, plus the entropy decision tree with both engines,
    and reports the agreement between them. The scenario must declare at
    least one MI target (the label column).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if not scenario.mi_targets:
        raise ParameterError(
            f"scenario {scenario.key!r} declares no MI target to use as"
            " the applications label"
        )
    label = scenario.mi_targets[0]
    dataset = generate_census(scenario, seed=seed, scale=scale)
    kept, dropped = partition_by_support(dataset.store)
    swope_sel = top_relevance_select(
        kept, label, num_features, engine="swope", seed=seed
    )
    exact_sel = top_relevance_select(kept, label, num_features, engine="exact")
    overlap = len(set(swope_sel.features) & set(exact_sel.features))
    trees = {}
    for engine in ("swope", "exact"):
        tree = EntropyTreeClassifier(
            max_depth=max_depth, engine=engine, seed=seed
        ).fit(kept, label)
        trees[engine] = tree.accuracy(kept)
    return {
        "scenario": scenario.key,
        "seed": seed,
        "label": label,
        "fingerprint": dataset.fingerprint,
        "dropped_columns": list(dropped),
        "selected_swope": list(swope_sel.features),
        "selected_exact": list(exact_sel.features),
        "selection_overlap": overlap / num_features,
        "selection_cells_swope": swope_sel.cells_scanned,
        "selection_cells_exact": exact_sel.cells_scanned,
        "tree_accuracy_swope": trees["swope"],
        "tree_accuracy_exact": trees["exact"],
    }


# ----------------------------------------------------------------------
# Rendering and persistence
# ----------------------------------------------------------------------
def render_track(report: CensusTrackReport) -> str:
    """Human-readable summary table of a track report."""
    lines = [
        f"census track: backend={report.backend} scale={report.scale:g}"
        f" seeds={list(report.seeds)}",
        f"{'scenario':<12} {'seed':>4} {'query':<14} {'acc':>6} {'guar':>5}"
        f" {'cells':>10} {'exact':>10}",
    ]
    for outcome in report.outcomes:
        for query in outcome.queries:
            lines.append(
                f"{outcome.scenario:<12} {outcome.seed:>4} {query.name:<14}"
                f" {query.accuracy:>6.3f} {'ok' if query.guarantee_held else 'VIOL':>5}"
                f" {query.cells:>10} {query.exact_cells:>10}"
            )
    lines.append(
        f"queries={report.total_queries} violations={report.violation_count}"
        f" rate={report.violation_rate:.6f}"
        f" p_f<={report.max_failure_probability:.6f}"
    )
    return "\n".join(lines)


def save_track_report(
    report: CensusTrackReport, path: Union[str, Path]
) -> Path:
    """Durably persist a track report as JSON (atomic write-rename)."""
    payload = {
        "backend": report.backend,
        "scale": report.scale,
        "seeds": list(report.seeds),
        "scenarios": list(report.scenarios),
        "total_queries": report.total_queries,
        "violation_count": report.violation_count,
        "violation_rate": report.violation_rate,
        "max_failure_probability": report.max_failure_probability,
        "outcomes": [asdict(outcome) for outcome in report.outcomes],
    }
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
