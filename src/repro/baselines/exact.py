"""Exact baseline: full-scan empirical entropy and mutual information.

The straightforward solution of Section 2.2 — scan every record of every
column, compute the exact scores, and answer the query from them. Serves
three roles in this repository: the "Exact" competitor of the paper's
evaluation, the ground truth for all accuracy metrics, and the reference
implementation the statistical tests validate the sampling algorithms
against.
"""

from __future__ import annotations

import time

from repro.core.engine import validate_k, validate_threshold
from repro.core.estimators import (
    entropy_from_counts,
    joint_entropy_from_counter,
)
from repro.core.results import AttributeEstimate, FilterResult, RunStats, TopKResult
from repro.data.column_store import ColumnStore
from repro.data.joint import JointCounter
from repro.exceptions import ParameterError, SchemaError

__all__ = [
    "exact_entropies",
    "exact_entropy",
    "exact_joint_entropy",
    "exact_mutual_information",
    "exact_mutual_informations",
    "exact_top_k_entropy",
    "exact_filter_entropy",
    "exact_top_k_mutual_information",
    "exact_filter_mutual_information",
]


# ----------------------------------------------------------------------
# Exact scores
# ----------------------------------------------------------------------
def exact_entropy(store: ColumnStore, attribute: str) -> float:
    """Exact empirical entropy ``H_D(α)`` of one attribute (bits)."""
    return entropy_from_counts(store.value_counts(attribute), total=store.num_rows)


def exact_entropies(
    store: ColumnStore, attributes: list[str] | None = None
) -> dict[str, float]:
    """Exact empirical entropies of several attributes (full column scans)."""
    names = list(attributes) if attributes is not None else list(store.attributes)
    return {name: exact_entropy(store, name) for name in names}


def exact_joint_entropy(store: ColumnStore, first: str, second: str) -> float:
    """Exact empirical joint entropy ``H_D(α1, α2)`` (bits)."""
    if first == second:
        raise SchemaError("joint entropy of an attribute with itself is its entropy")
    # Exact baseline reads the whole dataset once; there is no sampler
    # whose batch methods could own this counter.
    counter = JointCounter(  # noqa: SWP009
        store.support_size(first), store.support_size(second)
    )
    counter.update(store.column(first), store.column(second))
    return joint_entropy_from_counter(counter)


def exact_mutual_information(store: ColumnStore, first: str, second: str) -> float:
    """Exact empirical mutual information ``I_D(α1, α2)`` (bits)."""
    h1 = exact_entropy(store, first)
    h2 = exact_entropy(store, second)
    h12 = exact_joint_entropy(store, first, second)
    return max(0.0, h1 + h2 - h12)


def exact_mutual_informations(
    store: ColumnStore, target: str, candidates: list[str] | None = None
) -> dict[str, float]:
    """Exact MI of every candidate against ``target``."""
    if target not in store:
        raise SchemaError(f"unknown target attribute {target!r}")
    if candidates is None:
        candidates = [a for a in store.attributes if a != target]
    h_target = exact_entropy(store, target)
    scores: dict[str, float] = {}
    for name in candidates:
        if name == target:
            raise ParameterError(f"target {target!r} cannot also be a candidate")
        h_cand = exact_entropy(store, name)
        h_joint = exact_joint_entropy(store, target, name)
        scores[name] = max(0.0, h_target + h_cand - h_joint)
    return scores


# ----------------------------------------------------------------------
# Exact query answers (the paper's "Exact" competitor)
# ----------------------------------------------------------------------
def _stats_for_full_scan(
    store: ColumnStore, columns_read: int, started_at: float
) -> RunStats:
    return RunStats(
        iterations=1,
        final_sample_size=store.num_rows,
        population_size=store.num_rows,
        cells_scanned=columns_read * store.num_rows,
        wall_seconds=time.perf_counter() - started_at,
    )


def _exact_estimate(attribute: str, score: float, num_rows: int) -> AttributeEstimate:
    return AttributeEstimate(
        attribute=attribute,
        estimate=score,
        lower=score,
        upper=score,
        sample_size=num_rows,
    )


def exact_top_k_entropy(
    store: ColumnStore, k: int, *, attributes: list[str] | None = None
) -> TopKResult:
    """Exact entropy top-k by full scan."""
    k = validate_k(k)
    started = time.perf_counter()
    scores = exact_entropies(store, attributes)
    ranked = sorted(scores, key=lambda a: (-scores[a], a))[: min(k, len(scores))]
    return TopKResult(
        attributes=ranked,
        estimates=[_exact_estimate(a, scores[a], store.num_rows) for a in ranked],
        stats=_stats_for_full_scan(store, len(scores), started),
        k=k,
    )


def exact_filter_entropy(
    store: ColumnStore, threshold: float, *, attributes: list[str] | None = None
) -> FilterResult:
    """Exact entropy filtering (``H_D(α) >= η``) by full scan."""
    threshold = validate_threshold(threshold)
    started = time.perf_counter()
    scores = exact_entropies(store, attributes)
    included = sorted(
        (a for a, s in scores.items() if s >= threshold),
        key=lambda a: (-scores[a], a),
    )
    estimates = {
        a: _exact_estimate(a, s, store.num_rows) for a, s in scores.items()
    }
    return FilterResult(
        attributes=included,
        estimates=estimates,
        stats=_stats_for_full_scan(store, len(scores), started),
        threshold=threshold,
    )


def exact_top_k_mutual_information(
    store: ColumnStore,
    target: str,
    k: int,
    *,
    candidates: list[str] | None = None,
) -> TopKResult:
    """Exact MI top-k against ``target`` by full scan."""
    k = validate_k(k)
    started = time.perf_counter()
    scores = exact_mutual_informations(store, target, candidates)
    ranked = sorted(scores, key=lambda a: (-scores[a], a))[: min(k, len(scores))]
    # Each candidate costs a candidate-column scan plus a pair scan (two
    # columns); the target column is scanned once.
    columns_read = 1 + 3 * len(scores)
    return TopKResult(
        attributes=ranked,
        estimates=[_exact_estimate(a, scores[a], store.num_rows) for a in ranked],
        stats=_stats_for_full_scan(store, columns_read, started),
        k=k,
        target=target,
    )


def exact_filter_mutual_information(
    store: ColumnStore,
    target: str,
    threshold: float,
    *,
    candidates: list[str] | None = None,
) -> FilterResult:
    """Exact MI filtering (``I_D(α_t, α) >= η``) by full scan."""
    threshold = validate_threshold(threshold)
    started = time.perf_counter()
    scores = exact_mutual_informations(store, target, candidates)
    included = sorted(
        (a for a, s in scores.items() if s >= threshold),
        key=lambda a: (-scores[a], a),
    )
    estimates = {
        a: _exact_estimate(a, s, store.num_rows) for a, s in scores.items()
    }
    columns_read = 1 + 3 * len(scores)
    return FilterResult(
        attributes=included,
        estimates=estimates,
        stats=_stats_for_full_scan(store, columns_read, started),
        threshold=threshold,
        target=target,
    )
