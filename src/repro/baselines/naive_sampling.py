"""Naive fixed-size sampling baseline (ablation, not from the paper).

A single fixed-size without-replacement sample, plug-in scores, no bounds,
no adaptivity. This is what a practitioner gets from "just subsample 1% and
rank" — fast but with *no* guarantee. It exists to quantify what the
adaptive machinery buys: the ablation benches compare its accuracy against
SWOPE at matched sample sizes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engine import validate_k, validate_threshold
from repro.core.estimators import entropy_from_counts, joint_entropy_from_counter
from repro.core.results import AttributeEstimate, FilterResult, RunStats, TopKResult
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError

__all__ = [
    "naive_sample_entropies",
    "naive_sample_mutual_informations",
    "naive_top_k_entropy",
    "naive_filter_entropy",
]


def _check_sample_size(sample_size: int, population: int) -> int:
    if not 1 <= sample_size <= population:
        raise ParameterError(
            f"sample size must be in [1, {population}], got {sample_size}"
        )
    return int(sample_size)


def naive_sample_entropies(
    store: ColumnStore,
    sample_size: int,
    *,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
) -> dict[str, float]:
    """Plug-in entropies from one fixed-size random sample (no bounds)."""
    sample_size = _check_sample_size(sample_size, store.num_rows)
    names = list(attributes) if attributes is not None else list(store.attributes)
    sampler = PrefixSampler(store, seed=seed)
    return {
        name: entropy_from_counts(
            sampler.marginal_counts(name, sample_size), total=sample_size
        )
        for name in names
    }


def naive_sample_mutual_informations(
    store: ColumnStore,
    target: str,
    sample_size: int,
    *,
    seed: int | np.random.Generator | None = None,
    candidates: list[str] | None = None,
) -> dict[str, float]:
    """Plug-in MI scores against ``target`` from one fixed-size sample."""
    if target not in store:
        raise SchemaError(f"unknown target attribute {target!r}")
    sample_size = _check_sample_size(sample_size, store.num_rows)
    if candidates is None:
        candidates = [a for a in store.attributes if a != target]
    sampler = PrefixSampler(store, seed=seed)
    h_target = entropy_from_counts(
        sampler.marginal_counts(target, sample_size), total=sample_size
    )
    scores: dict[str, float] = {}
    for name in candidates:
        if name == target:
            raise ParameterError(f"target {target!r} cannot also be a candidate")
        h_cand = entropy_from_counts(
            sampler.marginal_counts(name, sample_size), total=sample_size
        )
        h_joint = joint_entropy_from_counter(
            sampler.joint_counts(target, name, sample_size)
        )
        scores[name] = max(0.0, h_target + h_cand - h_joint)
    return scores


def _estimate(attribute: str, score: float, sample_size: int) -> AttributeEstimate:
    return AttributeEstimate(
        attribute=attribute,
        estimate=score,
        lower=score,
        upper=score,
        sample_size=sample_size,
    )


def naive_top_k_entropy(
    store: ColumnStore,
    k: int,
    sample_size: int,
    *,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
) -> TopKResult:
    """Top-k by plug-in scores of one fixed-size sample. No guarantee."""
    k = validate_k(k)
    started = time.perf_counter()
    scores = naive_sample_entropies(
        store, sample_size, seed=seed, attributes=attributes
    )
    ranked = sorted(scores, key=lambda a: (-scores[a], a))[: min(k, len(scores))]
    stats = RunStats(
        iterations=1,
        final_sample_size=sample_size,
        population_size=store.num_rows,
        cells_scanned=sample_size * len(scores),
        wall_seconds=time.perf_counter() - started,
    )
    return TopKResult(
        attributes=ranked,
        estimates=[_estimate(a, scores[a], sample_size) for a in ranked],
        stats=stats,
        k=k,
    )


def naive_filter_entropy(
    store: ColumnStore,
    threshold: float,
    sample_size: int,
    *,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
) -> FilterResult:
    """Filtering by plug-in scores of one fixed-size sample. No guarantee."""
    threshold = validate_threshold(threshold)
    started = time.perf_counter()
    scores = naive_sample_entropies(
        store, sample_size, seed=seed, attributes=attributes
    )
    included = sorted(
        (a for a, s in scores.items() if s >= threshold),
        key=lambda a: (-scores[a], a),
    )
    stats = RunStats(
        iterations=1,
        final_sample_size=sample_size,
        population_size=store.num_rows,
        cells_scanned=sample_size * len(scores),
        wall_seconds=time.perf_counter() - started,
    )
    return FilterResult(
        attributes=included,
        estimates={a: _estimate(a, s, sample_size) for a, s in scores.items()},
        stats=stats,
        threshold=threshold,
    )
