"""EntropyFilter: the exact-answer filtering baseline of Wang & Ding (KDD'19).

Same bounds as SWOPE-Filtering, but an attribute is only retired once its
whole confidence interval clears the threshold — so attributes whose score
sits close to ``η`` keep the loop sampling until the data-dependent gap
``δ = |H(α) - η|`` is resolved (expected cost ``O(h log(hN) log²N / δ²)``).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.adaptive_exact import exact_stopping_filter
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import EntropyScoreProvider, default_failure_probability
from repro.core.results import FilterResult
from repro.core.schedule import SampleSchedule
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import SchemaError

__all__ = ["entropy_filter"]


def entropy_filter(
    store: ColumnStore,
    threshold: float,
    *,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
) -> FilterResult:
    """Answer an *exact* entropy filtering query by adaptive sampling.

    Parameters mirror :func:`repro.core.filtering.swope_filter_entropy`,
    minus ``epsilon``.
    ``budget``/``cancellation``/``strict`` behave as in the SWOPE engine.
    """
    names = list(attributes) if attributes is not None else list(store.attributes)
    unknown = [a for a in names if a not in store]
    if unknown:
        raise SchemaError(f"unknown attributes: {unknown}")
    if failure_probability is None:
        failure_probability = default_failure_probability(store.num_rows)
    if sampler is None:
        sampler = PrefixSampler(store, seed=seed)
    if schedule is None:
        schedule = SampleSchedule.for_query(
            store.num_rows,
            len(names),
            failure_probability,
            max(store.support_size(a) for a in names),
        )
    per_bound = schedule.per_round_failure(failure_probability, len(names))
    provider = EntropyScoreProvider(sampler, per_bound)
    return exact_stopping_filter(
        provider,
        sampler,
        names,
        threshold,
        schedule,
        budget=budget,
        cancellation=cancellation,
        strict=strict,
    )
