"""Baseline algorithms the paper evaluates SWOPE against.

* :mod:`repro.baselines.exact` — full-scan exact scores and query answers
  (the "Exact" competitor and the ground truth for accuracy metrics);
* :mod:`repro.baselines.entropy_rank` / :mod:`repro.baselines.entropy_filter`
  — EntropyRank/EntropyFilter of Wang & Ding (KDD'19), the state of the art
  the paper improves on;
* :mod:`repro.baselines.mi_rank` / :mod:`repro.baselines.mi_filter` — the
  same exact stopping rules over mutual-information bounds (Section 6.3
  competitors);
* :mod:`repro.baselines.naive_sampling` — fixed-size sampling with no
  guarantee (ablation only).
"""

from repro.baselines.adaptive_exact import exact_stopping_filter, exact_stopping_top_k
from repro.baselines.entropy_filter import entropy_filter
from repro.baselines.entropy_rank import entropy_rank_top_k
from repro.baselines.exact import (
    exact_entropies,
    exact_entropy,
    exact_filter_entropy,
    exact_filter_mutual_information,
    exact_joint_entropy,
    exact_mutual_information,
    exact_mutual_informations,
    exact_top_k_entropy,
    exact_top_k_mutual_information,
)
from repro.baselines.mi_filter import entropy_filter_mutual_information
from repro.baselines.mi_rank import entropy_rank_top_k_mutual_information
from repro.baselines.naive_sampling import (
    naive_filter_entropy,
    naive_sample_entropies,
    naive_sample_mutual_informations,
    naive_top_k_entropy,
)

__all__ = [
    "entropy_filter",
    "entropy_filter_mutual_information",
    "entropy_rank_top_k",
    "entropy_rank_top_k_mutual_information",
    "exact_entropies",
    "exact_entropy",
    "exact_filter_entropy",
    "exact_filter_mutual_information",
    "exact_joint_entropy",
    "exact_mutual_information",
    "exact_mutual_informations",
    "exact_stopping_filter",
    "exact_stopping_top_k",
    "exact_top_k_entropy",
    "exact_top_k_mutual_information",
    "naive_filter_entropy",
    "naive_sample_entropies",
    "naive_sample_mutual_informations",
    "naive_top_k_entropy",
]
