"""EntropyRank: the exact-answer top-k baseline of Wang & Ding (KDD'19).

The state of the art the reproduced paper compares against. Same sampling
substrate and Lemma 3 bounds as SWOPE, but the loop only stops once the
returned set is *provably the exact* top-k (k-th largest lower bound ≥
(k+1)-th largest upper bound), so the sample must grow until the
data-dependent gap Δ between the k-th and (k+1)-th entropies is resolved —
expected cost ``O(h log(hN) log²N / Δ²)``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.adaptive_exact import exact_stopping_top_k
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import EntropyScoreProvider, default_failure_probability
from repro.core.results import TopKResult
from repro.core.schedule import SampleSchedule
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import SchemaError

__all__ = ["entropy_rank_top_k"]


def entropy_rank_top_k(
    store: ColumnStore,
    k: int,
    *,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    prune: bool = True,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
) -> TopKResult:
    """Answer an *exact* entropy top-k query by adaptive sampling.

    Parameters mirror :func:`repro.core.topk.swope_top_k_entropy`, minus
    ``epsilon`` — this baseline has no approximation knob.
    ``budget``/``cancellation``/``strict`` behave as in the SWOPE engine.
    """
    names = list(attributes) if attributes is not None else list(store.attributes)
    unknown = [a for a in names if a not in store]
    if unknown:
        raise SchemaError(f"unknown attributes: {unknown}")
    if failure_probability is None:
        failure_probability = default_failure_probability(store.num_rows)
    if sampler is None:
        sampler = PrefixSampler(store, seed=seed)
    if schedule is None:
        schedule = SampleSchedule.for_query(
            store.num_rows,
            len(names),
            failure_probability,
            max(store.support_size(a) for a in names),
        )
    per_bound = schedule.per_round_failure(failure_probability, len(names))
    provider = EntropyScoreProvider(sampler, per_bound)
    return exact_stopping_top_k(
        provider,
        sampler,
        names,
        k,
        schedule,
        prune=prune,
        budget=budget,
        cancellation=cancellation,
        strict=strict,
    )
