"""EntropyFilter extended to empirical mutual information (exact filter).

The Section 6.3 competitor: KDD'19 stop-when-certain filtering over the
Section 4 mutual-information confidence intervals.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.adaptive_exact import exact_stopping_filter
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import (
    MutualInformationScoreProvider,
    default_failure_probability,
)
from repro.core.results import FilterResult
from repro.core.schedule import SampleSchedule
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError

__all__ = ["entropy_filter_mutual_information"]


def entropy_filter_mutual_information(
    store: ColumnStore,
    target: str,
    threshold: float,
    *,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    candidates: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
) -> FilterResult:
    """Answer an *exact* MI filtering query by adaptive sampling.

    Parameters mirror
    :func:`repro.core.mi_filtering.swope_filter_mutual_information`, minus
    ``epsilon``.
    ``budget``/``cancellation``/``strict`` behave as in the SWOPE engine.
    """
    if target not in store:
        raise SchemaError(f"unknown target attribute {target!r}")
    if candidates is None:
        names = [a for a in store.attributes if a != target]
    else:
        names = list(candidates)
        unknown = [a for a in names if a not in store]
        if unknown:
            raise SchemaError(f"unknown attributes: {unknown}")
        if target in names:
            raise ParameterError(
                f"target attribute {target!r} cannot also be a candidate"
            )
    if not names:
        raise ParameterError(
            "MI filtering query needs at least one candidate attribute"
        )
    if failure_probability is None:
        failure_probability = default_failure_probability(store.num_rows)
    if sampler is None:
        sampler = PrefixSampler(store, seed=seed)
    if schedule is None:
        schedule = SampleSchedule.for_query(
            store.num_rows,
            len(names) + 1,
            failure_probability,
            max(store.support_size(a) for a in [target, *names]),
        )
    per_bound = schedule.per_round_failure(
        failure_probability, len(names), bounds_per_attribute=3
    )
    provider = MutualInformationScoreProvider(sampler, target, per_bound)
    return exact_stopping_filter(
        provider,
        sampler,
        names,
        threshold,
        schedule,
        target=target,
        budget=budget,
        cancellation=cancellation,
        strict=strict,
    )
