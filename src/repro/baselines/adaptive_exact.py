"""Generic loops for the exact-answer adaptive baselines (KDD'19 [32]).

EntropyRank and EntropyFilter (Wang & Ding, "Fast Approximation of
Empirical Entropy via Subsampling", KDD 2019 — reference [32] of the
reproduced paper) use the same sampling-without-replacement bounds as SWOPE
but *exact* stopping rules:

* **top-k**: stop once the k-th largest lower bound is no smaller than the
  (k+1)-th largest upper bound — the answer is then provably the exact
  top-k set;
* **filtering**: retire an attribute only once its whole interval clears
  the threshold (``lower > η`` include, ``upper < η`` exclude).

Both rules force the sample to grow until data-dependent gaps (Δ between
the k-th and (k+1)-th scores; δ between a score and η) are resolved, which
is the inefficiency the reproduced paper removes. Sharing the providers and
schedule with SWOPE makes the comparison isolate exactly that difference.

The loops below take the same :class:`~repro.core.engine.ScoreProvider`
objects as the SWOPE engine, so the MI variants come for free.
"""

from __future__ import annotations

import time

from repro.core.budget import (
    CancellationToken,
    QueryBudget,
    check_interruption,
    raise_interrupted,
)
from repro.core.engine import (
    Interval,
    ScoreProvider,
    validate_k,
    validate_threshold,
)
from repro.core.results import (
    AttributeEstimate,
    FilterResult,
    GuaranteeStatus,
    RunStats,
    TopKResult,
)
from repro.core.schedule import SampleSchedule
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError

__all__ = ["exact_stopping_top_k", "exact_stopping_filter"]


def _estimate(attribute: str, iv: Interval, sample_size: int) -> AttributeEstimate:
    return AttributeEstimate(
        attribute=attribute,
        estimate=max(iv.lower, min(iv.upper, iv.midpoint)),
        lower=iv.lower,
        upper=iv.upper,
        sample_size=sample_size,
    )


def exact_stopping_top_k(
    provider: ScoreProvider,
    sampler: PrefixSampler,
    candidates: list[str],
    k: int,
    schedule: SampleSchedule,
    *,
    prune: bool = True,
    target: str | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
) -> TopKResult:
    """EntropyRank-style top-k: run until the exact answer is certain.

    In each iteration the candidates are ranked by *lower* bound; the loop
    stops when the k-th largest lower bound is at least the (k+1)-th
    largest upper bound over the whole candidate set (then the k attributes
    with the largest lower bounds are provably the exact top-k, up to
    bound-failure probability). At ``M = N`` the bounds are exact and the
    rule always fires.

    ``budget``/``cancellation``/``strict`` follow the engine's contract
    (:func:`repro.core.engine.adaptive_top_k`): the checkpoint runs once
    per iteration, a truncated run returns the current best-effort
    ranking with ``result.guarantee`` recording why it stopped, and
    ``strict=True`` raises instead. Converged exact runs keep
    ``result.guarantee`` as ``None`` — exactness needs no certificate.
    """
    k = validate_k(k)
    if not candidates:
        raise ParameterError("top-k query needs at least one candidate attribute")
    k_effective = min(k, len(candidates))
    started = time.perf_counter()
    cells_at_start = sampler.cells_scanned
    stats = RunStats()
    live = list(candidates)
    iterations = 0
    answer: list[tuple[str, Interval]] = []
    stop_reason: str | None = None
    sample_size = schedule.sizes[0]
    for index, sample_size in enumerate(schedule.sizes):
        iterations += 1
        intervals = {a: provider.interval(a, sample_size) for a in live}
        by_lower = sorted(live, key=lambda a: intervals[a].lower, reverse=True)
        answer = [(a, intervals[a]) for a in by_lower[:k_effective]]
        kth_lower = answer[-1][1].lower
        if len(live) <= k_effective:
            break
        uppers = sorted((intervals[a].upper for a in live), reverse=True)
        next_upper = uppers[k_effective]
        if kth_lower >= next_upper:
            break
        if index == len(schedule.sizes) - 1:
            break  # M = N: bounds are exact, the ranking is the answer.
        stop_reason = check_interruption(
            budget,
            cancellation,
            elapsed_seconds=time.perf_counter() - started,
            cells_used=sampler.cells_scanned - cells_at_start,
            next_sample_size=schedule.sizes[index + 1],
        )
        if stop_reason is not None:
            break
        if prune:
            survivors = [a for a in live if intervals[a].upper >= kth_lower]
            for gone in set(live) - set(survivors):
                stats.candidates_pruned += 1
                sampler.release(gone)
            live = survivors
    stats.iterations = iterations
    stats.final_sample_size = sample_size
    stats.population_size = sampler.num_rows
    stats.cells_scanned = sampler.cells_scanned
    stats.wall_seconds = time.perf_counter() - started
    guarantee = None
    if stop_reason is not None:
        # Truncated: the current by-lower-bound ranking is still a valid
        # best-effort answer (every interval holds). Back-solve the ε the
        # ranking does satisfy, as the SWOPE engine does.
        upper_k = min(iv.upper for _, iv in answer)
        width_max = max(iv.width for _, iv in answer)
        guarantee = GuaranteeStatus(
            guarantee_met=False,
            stopping_reason=stop_reason,
            requested_epsilon=0.0,
            achieved_epsilon=0.0 if upper_k <= 0.0 else width_max / upper_k,
        )
    result = TopKResult(
        attributes=[a for a, _ in answer],
        estimates=[_estimate(a, iv, sample_size) for a, iv in answer],
        stats=stats,
        k=k,
        target=target,
        guarantee=guarantee,
    )
    if strict and stop_reason is not None:
        raise_interrupted(stop_reason, result)
    return result


def exact_stopping_filter(
    provider: ScoreProvider,
    sampler: PrefixSampler,
    candidates: list[str],
    threshold: float,
    schedule: SampleSchedule,
    *,
    target: str | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
) -> FilterResult:
    """EntropyFilter-style filtering: retire only on certain comparisons.

    An attribute is included once ``lower > η``, excluded once
    ``upper < η``. An attribute whose exact score equals ``η`` can never
    satisfy either strict inequality, so at the final sample size
    (``M = N``, exact bounds) remaining attributes are decided by
    ``estimate >= η`` directly — matching the exact answer's closed
    threshold.

    ``budget``/``cancellation``/``strict`` follow the engine's contract:
    a truncated run resolves the still-undecided attributes best-effort
    by interval midpoint, lists them in ``result.guarantee.undecided``,
    and ``strict=True`` raises with the partial result attached.
    """
    threshold = validate_threshold(threshold)
    if not candidates:
        raise ParameterError("filtering query needs at least one candidate attribute")
    started = time.perf_counter()
    cells_at_start = sampler.cells_scanned
    stats = RunStats()
    undecided = list(candidates)
    included: list[str] = []
    estimates: dict[str, AttributeEstimate] = {}
    last_intervals: dict[str, Interval] = {}
    iterations = 0
    stop_reason: str | None = None
    sample_size = schedule.sizes[0]
    for index, sample_size in enumerate(schedule.sizes):
        iterations += 1
        final_round = index == len(schedule.sizes) - 1
        still: list[str] = []
        for attribute in undecided:
            iv = provider.interval(attribute, sample_size)
            last_intervals[attribute] = iv
            decided = True
            if iv.lower > threshold:
                included.append(attribute)
            elif iv.upper < threshold:
                pass  # excluded
            elif final_round:
                # Exact bounds; close the threshold comparison (>= η).
                if iv.estimate >= threshold:
                    included.append(attribute)
            else:
                decided = False
                still.append(attribute)
            if decided:
                estimates[attribute] = _estimate(attribute, iv, sample_size)
                sampler.release(attribute)
        undecided = still
        if not undecided:
            break
        if index < len(schedule.sizes) - 1:
            stop_reason = check_interruption(
                budget,
                cancellation,
                elapsed_seconds=time.perf_counter() - started,
                cells_used=sampler.cells_scanned - cells_at_start,
                next_sample_size=schedule.sizes[index + 1],
            )
            if stop_reason is not None:
                break
    if stop_reason is None:
        assert not undecided, "exact filtering ended with undecided attributes"
    undecided_at_stop = tuple(undecided)
    for attribute in undecided_at_stop:
        # Best-effort resolution of what the budget cut off: decide by
        # midpoint, keep the (still valid) current interval.
        iv = last_intervals[attribute]
        if iv.midpoint >= threshold:
            included.append(attribute)
        estimates[attribute] = _estimate(attribute, iv, sample_size)
    guarantee = None
    if stop_reason is not None:
        # Width-implied ε, as in the SWOPE engine: the smallest ε' whose
        # width rule (width < 2ε'η) would have decided every remaining
        # attribute at the final intervals.
        achieved = 0.0
        if undecided_at_stop:
            if threshold > 0.0:
                worst = max(last_intervals[a].width for a in undecided_at_stop)
                achieved = worst / (2.0 * threshold)
            else:  # pragma: no cover - η = 0 decides every attribute instantly
                achieved = float("inf")
        guarantee = GuaranteeStatus(
            guarantee_met=False,
            stopping_reason=stop_reason,
            requested_epsilon=0.0,
            achieved_epsilon=achieved,
            undecided=undecided_at_stop,
        )
    included.sort(key=lambda a: estimates[a].estimate, reverse=True)
    stats.iterations = iterations
    stats.final_sample_size = sample_size
    stats.population_size = sampler.num_rows
    stats.cells_scanned = sampler.cells_scanned
    stats.wall_seconds = time.perf_counter() - started
    result = FilterResult(
        attributes=included,
        estimates=estimates,
        stats=stats,
        threshold=threshold,
        target=target,
        guarantee=guarantee,
    )
    if strict and stop_reason is not None:
        raise_interrupted(stop_reason, result)
    return result
