"""Trace sinks: where the engine's event stream goes.

A sink is anything with an ``emit(event)`` method and an ``enabled``
flag. The engine treats a disabled sink (``enabled=False``) exactly like
no sink at all — it never constructs event objects — so the default
:class:`NullSink` is zero-overhead by design, not by luck.

Three implementations cover the common cases:

* :class:`NullSink` — the disabled default;
* :class:`InMemorySink` — collect events in a list (tests, notebooks);
* :class:`JsonlSink` — one JSON object per line to a file, deterministic
  byte-for-byte at a fixed seed (the golden-trace substrate).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, Protocol, Union, runtime_checkable

from repro.durability.atomic import AtomicTextFile
from repro.obs.events import TraceEvent, header_record

__all__ = [
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "serialize_event",
]


@runtime_checkable
class TraceSink(Protocol):
    """What the engine needs from a trace destination."""

    #: When False the engine skips event construction entirely.
    enabled: bool

    def emit(self, event: TraceEvent) -> None:
        """Receive one trace event."""
        ...  # pragma: no cover - protocol


def serialize_event(record: TraceEvent | dict[str, object]) -> str:
    """Canonical one-line JSON for a trace record.

    Sorted keys and minimal separators make the rendering independent of
    dict construction order, so traces from two runs at the same seed are
    byte-identical — the invariant the golden-trace suite pins.
    """
    payload = record.as_dict() if isinstance(record, TraceEvent) else record
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class NullSink:
    """The disabled sink: accepts nothing, costs nothing."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never called
        """Discard the event (the engine never calls this when disabled)."""


class InMemorySink:
    """Collect events in order; the test- and notebook-friendly sink."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Events whose ``event`` discriminator equals ``kind``."""
        return [e for e in self.events if type(e).event == kind]

    def kinds(self) -> list[str]:
        """The discriminator sequence, in emission order."""
        return [type(e).event for e in self.events]


class JsonlSink:
    """Write events as JSON Lines; deterministic at a fixed seed.

    The first line is always the schema header
    (``{"event": "header", "schema_version": ...}``) so a trace file
    identifies its own wire format even when the query emitted nothing.
    Accepts a path (owned; the stream goes through
    :class:`repro.durability.atomic.AtomicTextFile`, so the destination
    is only published — by rename — when :meth:`close` runs cleanly, and
    a crash mid-trace leaves the previous trace intact instead of a
    truncated one) or any writable text file object (borrowed; never
    closed by the sink).
    """

    enabled = True

    def __init__(self, destination: Union[str, Path, IO[str]]) -> None:
        if isinstance(destination, (str, Path)):
            self._file: Union[IO[str], AtomicTextFile] = AtomicTextFile(
                destination, encoding="utf-8"
            )
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self.event_count = 0
        self._file.write(serialize_event(header_record()) + "\n")

    def emit(self, event: TraceEvent) -> None:
        self._file.write(serialize_event(event) + "\n")
        self.event_count += 1

    def close(self) -> None:
        """Flush, and close the file if this sink opened it."""
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
