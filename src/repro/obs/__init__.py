"""Observability for the SWOPE engine: trace events, sinks, and metrics.

Three layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.events` — the deterministic, schema-versioned trace
  events the adaptive loops emit (``query_start``, ``iteration``,
  ``prune``, ``budget_degradation``, ``query_end``) plus the
  plan-level events the shared-scan executor adds (``plan_start``,
  ``query_retired``, ``plan_end``) and the durability events of
  checkpointing/resumed runs (``checkpoint_saved``, ``plan_resumed``);
* :mod:`repro.obs.sinks` — where the event stream goes
  (:class:`NullSink` disabled default, :class:`InMemorySink`,
  :class:`JsonlSink` with byte-stable serialisation);
* :mod:`repro.obs.metrics` — the aggregate layer
  (:class:`MetricsRegistry` with counters/gauges/histograms, Prometheus
  text exposition, JSON dump).

Usage::

    from repro.obs import InMemorySink, MetricsRegistry

    sink, registry = InMemorySink(), MetricsRegistry()
    result = swope_top_k_entropy(store, 4, seed=7, trace=sink, metrics=registry)
    sink.kinds()                       # ['query_start', 'iteration', ...]
    print(registry.render_prometheus())
"""

from repro.obs.events import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    BudgetDegradationEvent,
    CheckpointSavedEvent,
    IterationEvent,
    PlanEndEvent,
    PlanResumedEvent,
    PlanStartEvent,
    PruneEvent,
    QueryEndEvent,
    QueryRetiredEvent,
    QueryStartEvent,
    TraceEvent,
    header_record,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    record_checkpoint,
    record_plan,
    record_query,
    record_resume,
    reset_global_registry,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TraceSink,
    serialize_event,
)

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "BudgetDegradationEvent",
    "CheckpointSavedEvent",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "IterationEvent",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "PlanEndEvent",
    "PlanResumedEvent",
    "PlanStartEvent",
    "PruneEvent",
    "QueryEndEvent",
    "QueryRetiredEvent",
    "QueryStartEvent",
    "TraceEvent",
    "TraceSink",
    "global_registry",
    "header_record",
    "record_checkpoint",
    "record_plan",
    "record_query",
    "record_resume",
    "reset_global_registry",
    "serialize_event",
]
