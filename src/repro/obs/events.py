"""Structured trace events emitted by the adaptive SWOPE engine.

Every adaptive query can narrate its own execution as a stream of typed
events: one ``query_start``, one ``iteration`` per sample size visited,
zero or more ``prune`` / ``budget_degradation`` events, and exactly one
``query_end`` — even for runs truncated by a budget or raised in strict
mode. Events are **deterministic**: they carry no wall-clock timestamps
and every field is a pure function of the seeded shuffle, so two runs at
the same seed serialise to byte-identical JSONL. That determinism is
what makes the golden-trace regression suite
(``tests/test_golden_traces.py``) possible; wall-clock quantities go to
the :mod:`repro.obs.metrics` layer instead.

The wire schema is frozen under :data:`TRACE_SCHEMA_VERSION`. Any change
to an event's field set, field meaning, or serialisation is a schema
change and must bump the version *and* regenerate the committed golden
traces (``pytest --update-golden``); CI enforces the pairing via
``scripts/check_trace_schema.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "QueryStartEvent",
    "IterationEvent",
    "PruneEvent",
    "BudgetDegradationEvent",
    "QueryEndEvent",
    "PlanStartEvent",
    "QueryRetiredEvent",
    "PlanEndEvent",
    "CheckpointSavedEvent",
    "PlanResumedEvent",
    "ScheduleChosenEvent",
    "CacheHitEvent",
    "CacheMissEvent",
    "AnswerReusedEvent",
    "header_record",
]

#: Version of the trace wire schema. Bump on any event-shape change and
#: regenerate the golden traces in the same commit.
#: v2: plan-level events (``plan_start``/``query_retired``/``plan_end``)
#: emitted by :class:`repro.core.plan.PlanExecutor`.
#: v3: durability events (``checkpoint_saved``/``plan_resumed``) emitted
#: by checkpointing/resumed plan runs.
#: v4: planner-v2 events: cost-based scheduling (``schedule_chosen``)
#: and plan-cache outcomes (``cache_hit``/``cache_miss``/``answer_reused``).
TRACE_SCHEMA_VERSION = 4

#: Every ``event`` discriminator the schema admits (header excluded).
#: ``scripts/check_trace_schema.py`` validates golden traces against it.
EVENT_KINDS = (
    "query_start",
    "iteration",
    "prune",
    "budget_degradation",
    "query_end",
    "plan_start",
    "query_retired",
    "plan_end",
    "checkpoint_saved",
    "plan_resumed",
    "schedule_chosen",
    "cache_hit",
    "cache_miss",
    "answer_reused",
)


def header_record() -> dict[str, object]:
    """The first record of every JSONL trace: identifies the schema."""
    return {"event": "header", "schema_version": TRACE_SCHEMA_VERSION}


@dataclass(frozen=True)
class TraceEvent:
    """Base class of all trace events.

    Subclasses set the class-level ``event`` discriminator (the value of
    the ``"event"`` key on the wire) and add their payload fields.
    ``as_dict()`` is the single serialisation point: sinks must not
    invent their own field spellings.
    """

    event: ClassVar[str] = "event"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready payload, ``event`` discriminator included."""
        out: dict[str, object] = {"event": type(self).event}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out


@dataclass(frozen=True)
class QueryStartEvent(TraceEvent):
    """Emitted once, before the first adaptive iteration.

    Attributes
    ----------
    kind:
        ``"top_k"`` or ``"filter"`` — which stopping rule runs.
    score:
        ``"entropy"`` or ``"mutual_information"``.
    candidates:
        Candidate attribute names, in query order.
    population_size:
        ``N`` of the queried dataset.
    epsilon:
        The requested error parameter.
    k:
        Requested ``k`` for top-k queries, ``None`` for filtering.
    threshold:
        Threshold ``η`` for filtering queries, ``None`` for top-k.
    target:
        MI target attribute, ``None`` for entropy queries.
    schedule:
        Every sample size the schedule could visit.
    """

    event: ClassVar[str] = "query_start"

    kind: str
    score: str
    candidates: tuple[str, ...]
    population_size: int
    epsilon: float
    k: int | None = None
    threshold: float | None = None
    target: str | None = None
    schedule: tuple[int, ...] = ()


@dataclass(frozen=True)
class IterationEvent(TraceEvent):
    """One adaptive iteration: the intervals computed at one sample size.

    ``bounds`` maps each live attribute to ``[lower, upper]``;
    ``decided`` lists attributes retired this iteration (filtering only —
    top-k retires candidates via :class:`PruneEvent`); ``stopped`` is
    whether the paper's stopping rule fired at this sample size.
    """

    event: ClassVar[str] = "iteration"

    index: int
    sample_size: int
    candidates: tuple[str, ...]
    bounds: dict[str, tuple[float, float]]
    decided: tuple[str, ...] = ()
    stopped: bool = False

    def as_dict(self) -> dict[str, object]:
        out = super().as_dict()
        out["bounds"] = {a: list(b) for a, b in self.bounds.items()}
        return out


@dataclass(frozen=True)
class PruneEvent(TraceEvent):
    """Top-k candidate pruning (Algorithm 1, lines 15-17) fired."""

    event: ClassVar[str] = "prune"

    sample_size: int
    pruned: tuple[str, ...]
    survivors: int


@dataclass(frozen=True)
class BudgetDegradationEvent(TraceEvent):
    """A budget limit or cancellation truncated the run.

    ``reason`` is one of the non-``converged`` members of
    :data:`repro.core.results.STOPPING_REASONS`; ``sample_size`` is the
    last sample size whose intervals the degraded answer is built from.
    """

    event: ClassVar[str] = "budget_degradation"

    sample_size: int
    reason: str


@dataclass(frozen=True)
class PlanStartEvent(TraceEvent):
    """Emitted once by :class:`~repro.core.plan.PlanExecutor.execute`.

    Describes the whole batch before the first query runs: query names
    in execution order, the ordered union of marginal counters the plan
    will touch, and every ``(target, candidates)`` joint group MI specs
    require. Deterministic, like every trace event: no wall-clock.
    """

    event: ClassVar[str] = "plan_start"

    num_queries: int
    queries: tuple[str, ...]
    population_size: int
    marginal_attributes: tuple[str, ...] = ()
    joint_targets: tuple[tuple[str, tuple[str, ...]], ...] = ()


@dataclass(frozen=True)
class QueryRetiredEvent(TraceEvent):
    """One plan query satisfied its stopping rule (or degraded out).

    ``marginal_cells`` is the query's *incremental* cost over the shared
    sampler — the cells the batch paid beyond what earlier queries of
    the same plan had already counted.
    """

    event: ClassVar[str] = "query_retired"

    name: str
    index: int
    stopping_reason: str
    guarantee_met: bool
    final_sample_size: int
    marginal_cells: int
    answer: tuple[str, ...] = ()


@dataclass(frozen=True)
class PlanEndEvent(TraceEvent):
    """Emitted exactly once per executed plan, even on strict truncation.

    ``cells_scanned`` is the plan-wide total over the shared sampler;
    ``sample_floor`` is the ratcheted prefix size the executor will
    start its next query from.
    """

    event: ClassVar[str] = "plan_end"

    queries_completed: int
    total_queries: int
    cells_scanned: int
    sample_floor: int


@dataclass(frozen=True)
class CheckpointSavedEvent(TraceEvent):
    """A plan checkpoint was durably written (atomic write-rename).

    Deterministic like every trace event: ``boundary`` is the global
    iteration-boundary counter of the executor (it survives resume, so a
    resumed run's cadence continues the original's), ``query`` names the
    in-flight query (``None`` for the plan-start and plan-completion
    checkpoints). Payload size and save latency are wall-clock-adjacent
    and go to the metrics layer
    (:func:`repro.obs.metrics.record_checkpoint`), not here.
    """

    event: ClassVar[str] = "checkpoint_saved"

    boundary: int
    queries_completed: int
    query: str | None = None


@dataclass(frozen=True)
class PlanResumedEvent(TraceEvent):
    """A plan run restarted from a checkpoint instead of from scratch.

    Emitted once, directly after the header of the resumed run's trace —
    the counterpart of :class:`PlanStartEvent`, which a resumed run does
    *not* re-emit (the interrupted run already emitted it). ``boundary``
    is the iteration-boundary counter at the restored snapshot;
    ``query`` the in-flight query the run continues with (``None`` when
    the checkpoint captured a completed plan).
    """

    event: ClassVar[str] = "plan_resumed"

    queries_completed: int
    total_queries: int
    boundary: int
    sample_floor: int
    population_size: int
    query: str | None = None


@dataclass(frozen=True)
class ScheduleChosenEvent(TraceEvent):
    """The planner's cost model ordered the batch (v4).

    Emitted once per plan, directly after :class:`PlanStartEvent`, when
    :func:`~repro.core.plan.plan_queries` scheduled the batch instead of
    keeping submission order. ``queries`` is the chosen execution order,
    ``submission`` the same names in submission order, and
    ``estimated_cells`` the cost model's per-query predictions aligned
    with ``queries``. ``cost_model`` labels the predictor
    (``"analytic"`` or ``"fitted"``). Deterministic: the analytic model
    reads only the store schema and the query shapes.
    """

    event: ClassVar[str] = "schedule_chosen"

    order: str
    queries: tuple[str, ...]
    submission: tuple[str, ...]
    estimated_cells: tuple[int, ...] = ()
    cost_model: str = "analytic"


@dataclass(frozen=True)
class CacheHitEvent(TraceEvent):
    """The plan cache answered a query without running it (v4).

    ``mode`` is ``"exact"`` or ``"semantic"``; ``source_param`` is the
    stored entry's parameter (η or k) that served the request,
    ``requested_param`` the query's own.
    """

    event: ClassVar[str] = "cache_hit"

    name: str
    kind: str
    score: str
    mode: str
    source_param: float
    requested_param: float


@dataclass(frozen=True)
class CacheMissEvent(TraceEvent):
    """Answer reuse was consulted and declined; the query runs fresh (v4).

    Emitted only when a cache was attached — cacheless runs stay silent.
    A miss also covers semantic-replay refusal (a dominating entry
    existed but its history could not prove the derived answer).
    """

    event: ClassVar[str] = "cache_miss"

    name: str
    kind: str
    score: str


@dataclass(frozen=True)
class AnswerReusedEvent(TraceEvent):
    """The served answer, in place of the run it replaced (v4).

    The deterministic mirror of :class:`QueryEndEvent` for cache hits:
    the loop-shape fields describe the stored (or replayed) run,
    ``cells_saved`` the work the serve avoided (0 for semantic replays,
    which avoid *all* counting but whose saved cells were already
    reported by the run that populated the entry).
    """

    event: ClassVar[str] = "answer_reused"

    name: str
    mode: str
    iterations: int
    final_sample_size: int
    cells_saved: int
    answer: tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryEndEvent(TraceEvent):
    """Emitted exactly once per query, even on strict-mode truncation.

    Mirrors the result's :class:`~repro.core.results.GuaranteeStatus`
    and the deterministic parts of its
    :class:`~repro.core.results.RunStats` (wall-clock timings are
    deliberately absent — they go to the metrics layer).
    """

    event: ClassVar[str] = "query_end"

    stopping_reason: str
    guarantee_met: bool
    requested_epsilon: float
    achieved_epsilon: float
    iterations: int
    final_sample_size: int
    cells_scanned: int
    answer: tuple[str, ...]
    undecided: tuple[str, ...] = field(default=())
