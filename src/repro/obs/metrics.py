"""Process-wide metrics: counters, gauges, and histograms.

Where the trace layer (:mod:`repro.obs.events`) narrates *one* query
deterministically, the metrics layer aggregates *all* queries —
including the wall-clock quantities that are deliberately absent from
trace events. A :class:`MetricsRegistry` owns a set of named
instruments, renders them as Prometheus text exposition
(:meth:`MetricsRegistry.render_prometheus`) or a JSON-ready dict
(:meth:`MetricsRegistry.as_dict`), and is safe to share across threads.

The engine feeds the standard instruments through
:func:`record_query`; pass ``metrics=`` to any SWOPE query (or a
:class:`~repro.core.session.QuerySession`) to populate:

* ``queries_total`` / ``queries_degraded_total`` — counters;
* ``iterations_total``, ``cells_scanned_total``,
  ``candidates_pruned_total`` — counters;
* ``last_final_sample_size`` — gauge;
* ``query_wall_seconds``, ``query_counting_seconds``,
  ``query_bounds_seconds``, ``query_loop_seconds`` — latency
  histograms fed from :class:`~repro.core.engine.PhaseTimings`.

A process-wide default registry is available via
:func:`global_registry` for services that want one scrape target.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import TYPE_CHECKING, Callable, Union, cast

from repro.exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.plan import PlanStats
    from repro.core.results import GuaranteeStatus, RunStats

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "record_cache",
    "record_checkpoint",
    "record_plan",
    "record_query",
    "record_resume",
]

#: Prometheus-style latency buckets (seconds), log-spaced for query work.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _format_number(value: float) -> str:
    """Prometheus-friendly number rendering (integers without ``.0``)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically non-decreasing count. Construct via the registry."""

    metric_type = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    def as_dict(self) -> dict[str, object]:
        return {"type": self.metric_type, "help": self.help_text, "value": self._value}

    def render(self) -> list[str]:
        return [f"{self.name} {_format_number(self._value)}"]


class Gauge:
    """A value that can go up and down. Construct via the registry."""

    metric_type = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def as_dict(self) -> dict[str, object]:
        return {"type": self.metric_type, "help": self.help_text, "value": self._value}

    def render(self) -> list[str]:
        return [f"{self.name} {_format_number(self._value)}"]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are the inclusive upper bounds (``le``); an implicit
    ``+Inf`` bucket always exists. ``sum``/``count`` track the observed
    total and number of observations exactly, so tests can assert e.g.
    that per-phase latency totals reconcile with ``RunStats``.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: tuple[float, ...],
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ParameterError(
                f"histogram {name!r} buckets must be a non-empty ascending"
                f" sequence, got {buckets!r}"
            )
        self.name = name
        self.help_text = help_text
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        with self._lock:
            self._bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
            self._sum += value
            self._count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts per ``le`` bucket, cumulative, ``+Inf`` last."""
        out, running = [], 0
        for count in self._bucket_counts:
            running += count
            out.append(running)
        return out

    def as_dict(self) -> dict[str, object]:
        cumulative = self.cumulative_counts()
        labels = [_format_number(b) for b in self.buckets] + ["+Inf"]
        return {
            "type": self.metric_type,
            "help": self.help_text,
            "sum": self._sum,
            "count": self._count,
            "buckets": dict(zip(labels, cumulative)),
        }

    def render(self) -> list[str]:
        lines = []
        cumulative = self.cumulative_counts()
        for bound, count in zip(self.buckets, cumulative):
            lines.append(
                f'{self.name}_bucket{{le="{_format_number(bound)}"}} {count}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative[-1]}')
        lines.append(f"{self.name}_sum {_format_number(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named set of instruments with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (so callers need no
    first-use/bookkeeping dance) and raise
    :class:`~repro.exceptions.ParameterError` when the name is taken by
    a *different* instrument type.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(
        self, name: str, metric_type: str, build: Callable[[], _Metric]
    ) -> _Metric:
        if not _METRIC_NAME.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.metric_type != metric_type:
                    raise ParameterError(
                        f"metric {name!r} already registered as"
                        f" {existing.metric_type}, not {metric_type}"
                    )
                return existing
            metric = build()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return cast(
            Counter,
            self._register(
                name,
                Counter.metric_type,
                lambda: Counter(name, help_text, threading.Lock()),
            ),
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return cast(
            Gauge,
            self._register(
                name,
                Gauge.metric_type,
                lambda: Gauge(name, help_text, threading.Lock()),
            ),
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        return cast(
            Histogram,
            self._register(
                name,
                Histogram.metric_type,
                lambda: Histogram(name, help_text, threading.Lock(), buckets),
            ),
        )

    def get(self, name: str) -> _Metric:
        """Look up a registered instrument (KeyError-free by contract)."""
        with self._lock:
            if name not in self._metrics:
                raise ParameterError(f"no metric registered under {name!r}")
            return self._metrics[name]

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> dict[str, dict[str, object]]:
        """JSON-ready dump: ``{name: {type, help, ...state}}``, sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.as_dict() for name, metric in items}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            items = sorted(self._metrics.items())
        for name, metric in items:
            if metric.help_text:
                lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.metric_type}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


_GLOBAL_LOCK = threading.Lock()
_GLOBAL_REGISTRY: MetricsRegistry | None = None


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY


def reset_global_registry() -> None:
    """Discard the process-wide registry (test isolation hook)."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        _GLOBAL_REGISTRY = None


def record_query(
    registry: MetricsRegistry,
    *,
    kind: str,
    score: str,
    stats: "RunStats",
    guarantee: "GuaranteeStatus",
) -> None:
    """Feed one finished query's accounting into the standard instruments.

    Called by the adaptive loops after the run's
    :class:`~repro.core.results.RunStats` and
    :class:`~repro.core.results.GuaranteeStatus` are final — including
    degraded/cancelled runs (strict mode records before raising), so a
    dashboard sees every query the engine answered or attempted.
    """
    registry.counter(
        "queries_total", "Adaptive SWOPE queries executed"
    ).inc()
    registry.counter(
        f"queries_{kind}_total", f"Queries using the {kind} stopping rule"
    ).inc()
    registry.counter(
        f"queries_{score}_total", f"Queries scoring {score}"
    ).inc()
    if not guarantee.guarantee_met:
        registry.counter(
            "queries_degraded_total",
            "Queries truncated by a budget or cancellation",
        ).inc()
    registry.counter(
        "iterations_total", "Adaptive iterations executed"
    ).inc(stats.iterations)
    registry.counter(
        "cells_scanned_total", "Attribute cells read from stores"
    ).inc(stats.cells_scanned)
    # Sole feeder of the saved-cells counter: served answers also pass
    # through record_query, so adding it in record_cache too would
    # double-count (stats.cells_saved is per-query by contract).
    registry.counter(
        "cache_cells_saved_total",
        "Attribute cells the plan cache avoided reading",
    ).inc(stats.cells_saved)
    registry.counter(
        "candidates_pruned_total", "Candidates retired by top-k pruning"
    ).inc(stats.candidates_pruned)
    registry.gauge(
        "last_final_sample_size", "Final sample size M of the latest query"
    ).set(stats.final_sample_size)
    registry.histogram(
        "query_wall_seconds", "End-to-end query latency"
    ).observe(stats.wall_seconds)
    registry.histogram(
        "query_counting_seconds", "Per-query counting-phase time"
    ).observe(stats.counting_seconds)
    registry.histogram(
        "query_bounds_seconds", "Per-query bounds-phase time"
    ).observe(stats.bounds_seconds)
    registry.histogram(
        "query_loop_seconds", "Per-query loop overhead outside counting/bounds"
    ).observe(stats.loop_seconds)


def record_plan(registry: MetricsRegistry, *, stats: "PlanStats") -> None:
    """Feed one executed plan's accounting into the standard instruments.

    Called by :meth:`repro.core.plan.PlanExecutor.execute` after the
    plan's :class:`~repro.core.plan.PlanStats` are final — including
    plans truncated in strict mode, so dashboards see every batch the
    executor attempted. The per-query instruments are still fed by
    :func:`record_query` for each retired query; these plan-level
    instruments add the batch view (shared-scan cost, batch latency).
    """
    registry.counter(
        "plans_total", "Query plans executed"
    ).inc()
    registry.counter(
        "plan_queries_total", "Queries retired by plan execution"
    ).inc(stats.queries_completed)
    registry.counter(
        "plan_cells_scanned_total", "Attribute cells read during plan execution"
    ).inc(stats.cells_scanned)
    registry.histogram(
        "plan_wall_seconds", "End-to-end plan latency"
    ).observe(stats.wall_seconds)


def record_cache(
    registry: MetricsRegistry, *, hit: bool, mode: str | None = None
) -> None:
    """Feed one plan-cache answer lookup into the standard instruments.

    Called once per consulted query: ``hit=False`` for a miss (including
    semantic-replay refusals), ``hit=True`` with ``mode`` ``"exact"`` or
    ``"semantic"`` for a serve. Saved-cell accounting deliberately lives
    in :func:`record_query` (see the comment there), keeping
    ``cache_cells_saved_total`` reconcilable against summed
    :class:`~repro.core.results.RunStats`.
    """
    registry.counter(
        "cache_lookups_total", "Plan-cache answer lookups"
    ).inc()
    if hit:
        registry.counter(
            "cache_hits_total", "Queries answered from the plan cache"
        ).inc()
        if mode == "semantic":
            registry.counter(
                "cache_answers_reused_total",
                "Cache hits served by semantic (dominance) reuse",
            ).inc()
    else:
        registry.counter(
            "cache_misses_total", "Plan-cache lookups that ran fresh"
        ).inc()


def record_checkpoint(
    registry: MetricsRegistry, *, payload_bytes: int, seconds: float
) -> None:
    """Feed one durable checkpoint save into the standard instruments.

    Called by :class:`repro.core.plan.PlanExecutor` after each
    successful atomic checkpoint write. Size and latency live here, not
    in the (deterministic) ``checkpoint_saved`` trace event.
    """
    registry.counter(
        "checkpoints_saved_total", "Plan checkpoints durably written"
    ).inc()
    registry.gauge(
        "checkpoint_payload_bytes", "Size of the latest checkpoint file"
    ).set(payload_bytes)
    registry.histogram(
        "checkpoint_save_seconds", "Checkpoint serialization + atomic write latency"
    ).observe(seconds)


def record_resume(registry: MetricsRegistry, *, queries_completed: int) -> None:
    """Feed one checkpoint-resumed plan run into the standard instruments."""
    registry.counter(
        "plan_resumes_total", "Plan runs restarted from a checkpoint"
    ).inc()
    registry.counter(
        "plan_resume_queries_restored_total",
        "Already-retired queries restored from checkpoints",
    ).inc(queries_completed)
