"""High-level :class:`Dataset` facade: raw values in, decoded answers out.

The layered API (`ColumnStore` + `CategoricalEncoder` + query functions)
is what the experiments drive; downstream users mostly want one object
that remembers the encoding and answers queries in terms of their raw
values. :class:`Dataset` is that object:

>>> from repro.dataset import Dataset
>>> ds = Dataset.from_table({"color": ["red", "blue", "red"],
...                          "size": ["S", "M", "L"]})
>>> ds.top_k_entropy(1).attributes
['size']
>>> ds.value_distribution("color")
{'red': 2, 'blue': 1}

Every query method simply forwards to the corresponding
:mod:`repro.core` / :mod:`repro.baselines` function over the internal
store, so all guarantees and parameters carry over unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.core.filtering import swope_filter_entropy
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.results import FilterResult, TopKResult
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.data.csv_io import load_csv
from repro.data.encoding import CategoricalEncoder
from repro.data.filters import PAPER_MAX_SUPPORT, drop_high_support_columns
from repro.exceptions import SchemaError

__all__ = ["Dataset"]


class Dataset:
    """An encoded dataset plus its encoder, with query conveniences.

    Construct via :meth:`from_table` (in-memory columns of raw values) or
    :meth:`from_csv` (a headered file); or wrap an existing store with
    ``Dataset(store, encoder)``.
    """

    def __init__(
        self, store: ColumnStore, encoder: CategoricalEncoder | None = None
    ) -> None:
        self._store = store
        self._encoder = encoder

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls, table: Mapping[str, Sequence[object] | np.ndarray]
    ) -> "Dataset":
        """Encode an in-memory mapping of raw-value columns."""
        encoder = CategoricalEncoder()
        store = encoder.fit_transform(table)
        return cls(store, encoder)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        *,
        delimiter: str = ",",
        max_rows: int | None = None,
        usecols: list[str] | None = None,
    ) -> "Dataset":
        """Load and encode a headered CSV file."""
        store, encoder = load_csv(
            path, delimiter=delimiter, max_rows=max_rows, usecols=usecols
        )
        return cls(store, encoder)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        """The underlying encoded store (for the low-level APIs)."""
        return self._store

    @property
    def encoder(self) -> CategoricalEncoder | None:
        """The encoder, if this dataset was built from raw values."""
        return self._encoder

    @property
    def num_rows(self) -> int:
        return self._store.num_rows

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._store.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self._store.num_rows:,} rows x"
            f" {self._store.num_attributes} attributes)"
        )

    def value_distribution(self, attribute: str) -> dict[object, int]:
        """Occurrence counts of ``attribute`` keyed by *raw* value.

        Falls back to integer codes when no encoder is attached.
        """
        counts = self._store.value_counts(attribute)
        out: dict[object, int] = {}
        for code, count in enumerate(counts.tolist()):
            if count == 0:
                continue
            key: object = code
            if self._encoder is not None and attribute in self._encoder.vocabularies:
                key = self._encoder.decode_value(attribute, code)
            out[key] = count
        return out

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def without_high_support(
        self, max_support: int = PAPER_MAX_SUPPORT
    ) -> "Dataset":
        """Apply the paper's support-size preprocessing (drop u > 1000)."""
        return Dataset(
            drop_high_support_columns(self._store, max_support), self._encoder
        )

    # ------------------------------------------------------------------
    # Exact scores
    # ------------------------------------------------------------------
    def entropies(self) -> dict[str, float]:
        """Exact empirical entropies of every attribute (full scan)."""
        return exact_entropies(self._store)

    def mutual_informations(self, target: str) -> dict[str, float]:
        """Exact MI of every other attribute against ``target``."""
        return exact_mutual_informations(self._store, target)

    # ------------------------------------------------------------------
    # SWOPE queries (guarantees per Definitions 5-6)
    # ------------------------------------------------------------------
    def top_k_entropy(self, k: int, **kwargs) -> TopKResult:
        """Approximate entropy top-k (Algorithm 1). Keywords forward to
        :func:`repro.core.topk.swope_top_k_entropy`."""
        return swope_top_k_entropy(self._store, k, **kwargs)

    def filter_entropy(self, threshold: float, **kwargs) -> FilterResult:
        """Approximate entropy filtering (Algorithm 2)."""
        return swope_filter_entropy(self._store, threshold, **kwargs)

    def top_k_mutual_information(
        self, target: str, k: int, **kwargs
    ) -> TopKResult:
        """Approximate MI top-k against ``target`` (Algorithm 3)."""
        return swope_top_k_mutual_information(self._store, target, k, **kwargs)

    def filter_mutual_information(
        self, target: str, threshold: float, **kwargs
    ) -> FilterResult:
        """Approximate MI filtering against ``target`` (Algorithm 4)."""
        return swope_filter_mutual_information(
            self._store, target, threshold, **kwargs
        )

    # ------------------------------------------------------------------
    # Decoding helpers
    # ------------------------------------------------------------------
    def decode(self, attribute: str, codes: Sequence[int]) -> list[object]:
        """Translate integer codes of ``attribute`` back to raw values."""
        if self._encoder is None:
            raise SchemaError(
                "this Dataset wraps a pre-encoded store with no encoder;"
                " decode() is unavailable"
            )
        return self._encoder.decode(attribute, codes)
