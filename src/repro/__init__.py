"""SWOPE: approximate top-k and filtering queries on empirical entropy
and mutual information.

A production-quality reproduction of Chen & Wang, *Efficient Approximate
Algorithms for Empirical Entropy and Mutual Information*, SIGMOD 2021.

Quickstart
----------
>>> from repro import encode_table, swope_top_k_entropy
>>> store, _ = encode_table({
...     "color": ["red", "blue", "red", "green"] * 1000,
...     "flag": [0, 0, 0, 1] * 1000,
... })
>>> result = swope_top_k_entropy(store, k=1, seed=7)
>>> result.attributes
['color']

Public API layers
-----------------
* the four SWOPE query functions (:func:`swope_top_k_entropy`,
  :func:`swope_filter_entropy`, :func:`swope_top_k_mutual_information`,
  :func:`swope_filter_mutual_information`);
* exact and adaptive-exact baselines under :mod:`repro.baselines`;
* the data substrate under :mod:`repro.data`;
* synthetic census-like datasets under :mod:`repro.synth`;
* the experiment harness (paper figures/tables) under
  :mod:`repro.experiments`;
* observability (trace events, sinks, metrics) under :mod:`repro.obs`.
"""

from repro.baselines import (
    entropy_filter,
    entropy_filter_mutual_information,
    entropy_rank_top_k,
    entropy_rank_top_k_mutual_information,
    exact_entropies,
    exact_entropy,
    exact_filter_entropy,
    exact_filter_mutual_information,
    exact_joint_entropy,
    exact_mutual_information,
    exact_mutual_informations,
    exact_top_k_entropy,
    exact_top_k_mutual_information,
)
from repro.core import (
    AttributeEstimate,
    CancellationToken,
    QueryBudget,
    QuerySession,
    QueryTrace,
    ConfidenceInterval,
    FilterResult,
    GuaranteeStatus,
    MutualInformationInterval,
    RunStats,
    SampleSchedule,
    TopKResult,
    entropy_from_counts,
    swope_filter_entropy,
    swope_filter_mutual_information,
    swope_top_k_entropy,
    swope_top_k_mutual_information,
)
from repro.data import (
    CategoricalEncoder,
    ColumnSource,
    ColumnStore,
    MmapStore,
    MmapStoreWriter,
    PrefixSampler,
    ProcessBackend,
    drop_high_support_columns,
    encode_table,
    load_csv,
)
from repro.exceptions import (
    BudgetExceededError,
    DataFormatError,
    EncodingError,
    ParameterError,
    QueryCancelledError,
    QueryInterruptedError,
    ReproError,
    SchemaError,
)
from repro.dataset import Dataset
from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    TraceSink,
)
from repro.synth import load_dataset

__version__ = "1.0.0"

__all__ = [
    "AttributeEstimate",
    "BudgetExceededError",
    "CancellationToken",
    "CategoricalEncoder",
    "ColumnSource",
    "ColumnStore",
    "ConfidenceInterval",
    "DataFormatError",
    "Dataset",
    "EncodingError",
    "FilterResult",
    "GuaranteeStatus",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "MmapStore",
    "MmapStoreWriter",
    "MutualInformationInterval",
    "NullSink",
    "ParameterError",
    "PrefixSampler",
    "ProcessBackend",
    "QueryBudget",
    "QueryCancelledError",
    "QueryInterruptedError",
    "QuerySession",
    "QueryTrace",
    "ReproError",
    "RunStats",
    "SampleSchedule",
    "SchemaError",
    "TopKResult",
    "TraceSink",
    "drop_high_support_columns",
    "encode_table",
    "entropy_filter",
    "entropy_filter_mutual_information",
    "entropy_from_counts",
    "entropy_rank_top_k",
    "entropy_rank_top_k_mutual_information",
    "exact_entropies",
    "exact_entropy",
    "exact_filter_entropy",
    "exact_filter_mutual_information",
    "exact_joint_entropy",
    "exact_mutual_information",
    "exact_mutual_informations",
    "exact_top_k_entropy",
    "exact_top_k_mutual_information",
    "load_csv",
    "load_dataset",
    "swope_filter_entropy",
    "swope_filter_mutual_information",
    "swope_top_k_entropy",
    "swope_top_k_mutual_information",
    "__version__",
]
