"""Fault-injection and resilience-testing utilities.

These helpers live inside the package (not under ``tests/``) so that
downstream users can exercise their own pipelines against injected I/O
faults the same way this repository's test suite does.
"""

from repro.testing.faults import FlakyReader, FlakyStore, retry_with_backoff

__all__ = ["FlakyReader", "FlakyStore", "retry_with_backoff"]
