"""Fault injection for I/O paths, and the retry helper that survives it.

A production entropy service reads columns and streams CSVs from storage
that occasionally hiccups: NFS timeouts, container volume remounts,
object-store throttling. This module provides

* :func:`retry_with_backoff` — bounded exponential backoff with jitter
  around any callable, retrying only a configurable set of transient
  exception types. :func:`repro.data.streaming.stream_csv_counts` and
  :func:`repro.data.csv_io.load_csv` use it when asked to retry.
* :class:`FlakyReader` — a file *opener* that fails the first few
  attempts with a transient ``OSError`` (at open, or mid-stream after a
  configurable number of rows) and can inject per-line latency. Pass it
  as ``opener=`` to the CSV readers to simulate flaky storage.
* :class:`FlakyStore` — a :class:`~repro.data.column_store.ColumnStore`
  wrapper whose column reads fail transiently and/or run slow, for
  exercising query-level retry and deadline budgets.

All failure schedules are deterministic (fail the first ``fail_times``
attempts, then succeed) so tests stay reproducible without seeding.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["FlakyReader", "FlakyStore", "retry_with_backoff"]


def retry_with_backoff(
    fn: Callable[[], object],
    *,
    max_retries: int = 3,
    base_delay_s: float = 0.05,
    max_delay_s: float = 2.0,
    jitter: float = 0.5,
    max_elapsed_s: float | None = None,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    rng: int | np.random.Generator | None = None,
):
    """Call ``fn`` with bounded exponential backoff on transient errors.

    Parameters
    ----------
    fn:
        Zero-argument callable to execute; its return value is returned.
    max_retries:
        Retries *after* the first attempt (``max_retries=3`` means up to
        4 calls). ``0`` disables retrying.
    base_delay_s:
        Delay before the first retry; doubled on each further retry.
    max_delay_s:
        Cap on the pre-jitter delay.
    jitter:
        Fraction in ``[0, 1]``: each delay is multiplied by a uniform
        factor in ``[1, 1 + jitter]`` to decorrelate concurrent
        retriers.
    max_elapsed_s:
        Overall time cap: a retry whose pre-jitter delay would push the
        elapsed time past this bound is not attempted — the last error
        propagates instead. Elapsed time is the larger of the measured
        wall clock and the cumulative *planned* delays, so tests that
        inject a recording ``sleep`` exercise the cap deterministically.
        ``None`` (default) means no cap.
    retryable:
        Exception types that trigger a retry. Anything else — notably
        :class:`~repro.exceptions.DataFormatError` for malformed input,
        which no retry can fix — propagates unchanged on the spot.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    rng:
        Seed or generator for the jitter draw.

    Raises
    ------
    The last retryable exception, once ``max_retries`` is exhausted or
    ``max_elapsed_s`` would be exceeded.
    """
    if max_retries < 0:
        raise ParameterError(f"max_retries must be >= 0, got {max_retries}")
    if base_delay_s < 0 or max_delay_s < 0:
        raise ParameterError("backoff delays must be >= 0")
    if not 0.0 <= jitter <= 1.0:
        raise ParameterError(f"jitter must be in [0, 1], got {jitter}")
    if max_elapsed_s is not None and max_elapsed_s <= 0:
        raise ParameterError(f"max_elapsed_s must be > 0, got {max_elapsed_s}")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    started = time.perf_counter()
    planned_sleep = 0.0
    attempt = 0
    while True:
        try:
            return fn()
        except retryable:
            attempt += 1
            if attempt > max_retries:
                raise
            delay = min(max_delay_s, base_delay_s * 2.0 ** (attempt - 1))
            if max_elapsed_s is not None:
                elapsed = max(time.perf_counter() - started, planned_sleep)
                if elapsed + delay > max_elapsed_s:
                    raise
            planned_sleep += delay
            sleep(delay * (1.0 + jitter * float(generator.random())))


class _FlakyHandle:
    """File-like wrapper that injects latency and mid-stream failures."""

    def __init__(
        self,
        handle,
        *,
        fail_after_rows: int | None,
        latency_s: float,
        make_error: Callable[[], OSError],
        sleep: Callable[[float], None],
    ) -> None:
        self._handle = handle
        self._fail_after_rows = fail_after_rows
        self._latency_s = latency_s
        self._make_error = make_error
        self._sleep = sleep
        self._rows_read = 0

    def __enter__(self) -> "_FlakyHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self._handle.close()

    def close(self) -> None:
        self._handle.close()

    def __iter__(self) -> Iterator[str]:
        return self

    def __next__(self) -> str:
        if (
            self._fail_after_rows is not None
            and self._rows_read >= self._fail_after_rows
        ):
            raise self._make_error()
        if self._latency_s > 0.0:
            self._sleep(self._latency_s)
        line = next(self._handle)
        self._rows_read += 1
        return line


class FlakyReader:
    """A CSV opener that fails transiently, for fault-injection tests.

    The reader fails the first ``fail_times`` open attempts and then
    behaves normally, modelling a transient storage outage that a
    bounded retry rides out. With ``fail_after_rows`` set, failing
    attempts open successfully but raise mid-stream after that many
    lines instead — the nastier partial-read failure mode.

    Parameters
    ----------
    fail_times:
        Number of initial attempts to fail (0 = never fail).
    fail_after_rows:
        ``None`` (default) fails at open; an integer ``r`` fails after
        ``r`` lines have been read from the failing attempt's handle.
    latency_s:
        Injected delay per line read (on every attempt), for exercising
        deadline budgets.
    message:
        Message of the injected ``OSError``.
    sleep:
        Injection point for the latency sleep (tests pass a recorder).

    Use as the ``opener=`` argument of
    :func:`~repro.data.streaming.stream_csv_counts` or
    :func:`~repro.data.csv_io.load_csv`:

    >>> reader = FlakyReader(fail_times=2)                   # doctest: +SKIP
    >>> stream_csv_counts(path, opener=reader, max_retries=3)
    """

    def __init__(
        self,
        *,
        fail_times: int = 1,
        fail_after_rows: int | None = None,
        latency_s: float = 0.0,
        message: str = "injected transient read failure",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if fail_times < 0:
            raise ParameterError(f"fail_times must be >= 0, got {fail_times}")
        if fail_after_rows is not None and fail_after_rows < 0:
            raise ParameterError(
                f"fail_after_rows must be >= 0, got {fail_after_rows}"
            )
        if latency_s < 0:
            raise ParameterError(f"latency_s must be >= 0, got {latency_s}")
        self._remaining_failures = fail_times
        self._fail_after_rows = fail_after_rows
        self._latency_s = latency_s
        self._message = message
        self._sleep = sleep
        self.attempts = 0
        self.failures_injected = 0

    def _make_error(self) -> OSError:
        self.failures_injected += 1
        return OSError(self._message)

    def __call__(self, path: str | Path) -> _FlakyHandle:
        self.attempts += 1
        failing = self._remaining_failures > 0
        if failing:
            self._remaining_failures -= 1
            if self._fail_after_rows is None:
                raise self._make_error()
        return _FlakyHandle(
            Path(path).open(newline=""),
            fail_after_rows=self._fail_after_rows if failing else None,
            latency_s=self._latency_s,
            make_error=self._make_error,
            sleep=self._sleep,
        )


class FlakyStore:
    """ColumnStore wrapper injecting transient failures into column reads.

    The first ``fail_times`` calls to :meth:`column` raise ``OSError``;
    later calls succeed, optionally after ``latency_s`` of injected
    delay per read. Everything else delegates to the wrapped store, so a
    ``FlakyStore`` can stand in anywhere a
    :class:`~repro.data.column_store.ColumnStore` is accepted —
    samplers, queries, sessions.

    Wrap individual reads with :func:`retry_with_backoff` to build
    retrying access, or run a deadline-budgeted query over a
    high-latency store to exercise graceful degradation.
    """

    def __init__(
        self,
        store,
        *,
        fail_times: int = 0,
        latency_s: float = 0.0,
        message: str = "injected transient column-read failure",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if fail_times < 0:
            raise ParameterError(f"fail_times must be >= 0, got {fail_times}")
        if latency_s < 0:
            raise ParameterError(f"latency_s must be >= 0, got {latency_s}")
        self._store = store
        self._remaining_failures = fail_times
        self._latency_s = latency_s
        self._message = message
        self._sleep = sleep
        self.reads = 0
        self.failures_injected = 0

    # -- fault-injected read -------------------------------------------
    def column(self, name: str):
        self.reads += 1
        if self._remaining_failures > 0:
            self._remaining_failures -= 1
            self.failures_injected += 1
            raise OSError(self._message)
        if self._latency_s > 0.0:
            self._sleep(self._latency_s)
        # Fault-injection wrapper: this *is* the read it instruments.
        return self._store.column(name)  # noqa: SWP018

    def column_block(self, name: str, rows):
        # Routed through self.column() so block reads share the same
        # failure/latency injection as whole-handle reads.
        return self.column(name)[rows]  # noqa: SWP018

    # -- transparent delegation ----------------------------------------
    @property
    def attributes(self):
        return self._store.attributes

    @property
    def num_rows(self) -> int:
        return self._store.num_rows

    @property
    def num_attributes(self) -> int:
        return self._store.num_attributes

    def support_size(self, name: str) -> int:
        return self._store.support_size(name)

    def value_counts(self, name: str):
        return self._store.value_counts(name)

    def __contains__(self, name: object) -> bool:
        return name in self._store

    def __getattr__(self, name: str):
        return getattr(self._store, name)
