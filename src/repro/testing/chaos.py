"""Chaos harness: scripted faults at plan iteration boundaries.

The durability claim of :class:`~repro.core.plan.PlanExecutor` — kill
the process at *any* iteration boundary, resume from the checkpoint,
get bit-identical answers — is only worth something if it is proved at
every boundary, not a hand-picked one. This module is the proving rig:

* :class:`ChaosPlan` — a tiny fault-plan DSL (``"run:3 kill"``) mapping
  iteration-boundary ordinals to fault actions;
* :class:`BoundaryFaultToken` — a cancellation-token-shaped probe that
  fires those faults exactly at the engine's interruption checks
  (:class:`SimulatedKillError` for a crash, :class:`OSError` for flaky
  IO, cooperative ``cancel``);
* :func:`count_iteration_boundaries` — how many kill opportunities a
  workload has, so a test can sweep all of them;
* :func:`truncate_file` — simulate the torn write a non-atomic writer
  would leave behind;
* :func:`result_fingerprint` / :func:`plan_fingerprint` — the
  deterministic projection of results (answers, estimates, guarantees,
  work accounting; wall-clock excluded) that resumed and uninterrupted
  runs must agree on byte-for-byte.

The kill fires at the interruption check, which the adaptive loops run
*before* the prune step and the checkpoint hook of the same iteration:
the last durable checkpoint is therefore the previous boundary, and a
resumed run replays exactly one iteration — the strongest alignment a
crash-consistent snapshot can promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence, Union

from repro.exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import PlanResult, QueryPlan, QueryResult

__all__ = [
    "FAULT_ACTIONS",
    "BoundaryFaultToken",
    "ChaosPlan",
    "SimulatedKillError",
    "count_iteration_boundaries",
    "plan_fingerprint",
    "result_fingerprint",
    "truncate_file",
]

#: The three injectable faults: a hard crash, a flaky-IO error, and a
#: cooperative cancellation.
FAULT_ACTIONS = ("kill", "io_error", "cancel")


class SimulatedKillError(Exception):
    """A simulated process death.

    Deliberately *not* a :class:`~repro.exceptions.ReproError` — nothing
    in the engine or executor may catch it, exactly as nothing catches a
    real SIGKILL. Whatever checkpoint was on disk when it fired is what
    recovery gets.
    """


@dataclass(frozen=True)
class ChaosPlan:
    """A scripted schedule of faults keyed by iteration-boundary ordinal.

    ``faults`` maps 0-based boundary ordinals (the n-th interruption
    check across the whole plan execution) to an action from
    :data:`FAULT_ACTIONS`. Build one directly, via :meth:`kill_at`, or
    from the DSL::

        ChaosPlan.from_steps("run:3 kill")     # survive 3 checks, die on the 4th
        ChaosPlan.from_steps("run:1 io-error run:2 cancel")
    """

    faults: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for boundary, action in self.faults:
            if boundary < 0:
                raise ParameterError(
                    f"fault boundary must be >= 0, got {boundary!r}"
                )
            if action not in FAULT_ACTIONS:
                raise ParameterError(
                    f"unknown fault action {action!r};"
                    f" expected one of {FAULT_ACTIONS}"
                )
            if boundary in seen:
                raise ParameterError(
                    f"duplicate fault at boundary {boundary}"
                )
            seen.add(boundary)

    def action_at(self, boundary: int) -> str | None:
        """The fault scheduled for ``boundary``, or ``None``."""
        for at, action in self.faults:
            if at == boundary:
                return action
        return None

    @classmethod
    def kill_at(cls, boundary: int) -> "ChaosPlan":
        """Die at the ``boundary``-th interruption check (0-based)."""
        return cls(faults=((boundary, "kill"),))

    @classmethod
    def from_steps(cls, steps: Union[str, Sequence[str]]) -> "ChaosPlan":
        """Parse the DSL: ``run:N`` advances N healthy boundaries, a
        fault token (``kill`` / ``io-error`` / ``cancel``) burns one."""
        tokens = steps.replace(",", " ").split() if isinstance(steps, str) else list(steps)
        faults: list[tuple[int, str]] = []
        boundary = 0
        for token in tokens:
            word = token.strip().lower()
            if word.startswith("run:"):
                try:
                    advance = int(word[4:])
                except ValueError:
                    raise ParameterError(
                        f"bad chaos step {token!r}: run:N needs an integer"
                    ) from None
                if advance < 0:
                    raise ParameterError(
                        f"bad chaos step {token!r}: run:N needs N >= 0"
                    )
                boundary += advance
                continue
            action = word.replace("-", "_")
            if action not in FAULT_ACTIONS:
                raise ParameterError(
                    f"unknown chaos step {token!r}; expected run:N or one of"
                    f" {FAULT_ACTIONS}"
                )
            faults.append((boundary, action))
            boundary += 1
        return cls(faults=tuple(faults))


class BoundaryFaultToken:
    """A cancellation-token-shaped probe firing a :class:`ChaosPlan`.

    The engine polls ``cancelled`` once per iteration boundary (the
    interruption check every adaptive loop runs before growing the
    sample). This token counts those polls and fires the scheduled
    fault when its ordinal comes up: ``kill`` raises
    :class:`SimulatedKillError`, ``io_error`` raises :class:`OSError`,
    ``cancel`` returns ``True`` (cooperative degradation). With no plan
    it is a pure boundary counter.
    """

    def __init__(self, plan: ChaosPlan | None = None) -> None:
        self._actions = dict(plan.faults) if plan is not None else {}
        #: Interruption checks observed so far (== boundaries crossed).
        self.checks = 0
        #: ``(boundary, action)`` pairs that actually fired.
        self.fired: list[tuple[int, str]] = []
        self.reason: str | None = None

    @property
    def cancelled(self) -> bool:
        boundary = self.checks
        self.checks += 1
        action = self._actions.get(boundary)
        if action is None:
            return False
        self.fired.append((boundary, action))
        if action == "kill":
            raise SimulatedKillError(
                f"simulated process death at iteration boundary {boundary}"
            )
        if action == "io_error":
            raise OSError(
                f"injected IO failure at iteration boundary {boundary}"
            )
        self.reason = f"chaos cancel at boundary {boundary}"
        return True


def count_iteration_boundaries(
    store: Any,
    specs: Sequence[Any],
    *,
    seed: int | None = None,
    backend: Any = None,
) -> int:
    """Kill opportunities in one uninterrupted run of ``specs``.

    Runs the plan on a fresh throwaway executor with a counting token
    and returns how many interruption checks the engine performed — the
    exclusive upper bound for :meth:`ChaosPlan.kill_at` sweeps.
    """
    from repro.core.plan import PlanExecutor, plan_queries

    executor = PlanExecutor(store, seed=seed, backend=backend)
    token = BoundaryFaultToken()
    executor.execute(plan_queries(store, list(specs)), cancellation=token)
    return token.checks


def truncate_file(path: Union[str, Path], keep_bytes: int) -> int:
    """Truncate ``path`` to its first ``keep_bytes`` bytes.

    Simulates the torn artifact a crash mid-write would leave behind if
    the writer were not atomic; returns the number of bytes kept. The
    write is deliberately in-place and non-atomic — that is the point.
    """
    if keep_bytes < 0:
        raise ParameterError(f"keep_bytes must be >= 0, got {keep_bytes!r}")
    target = Path(path)
    data = target.read_bytes()[:keep_bytes]
    target.write_bytes(data)
    return len(data)


def result_fingerprint(result: "QueryResult") -> dict[str, Any]:
    """The deterministic projection of one query result.

    Everything seed-determined is included — answer order, estimates and
    intervals, sample sizes, cells scanned, prune counts, the guarantee
    — and everything machine-dependent (wall-clock phase timings) is
    excluded. Two runs at the same seed must agree on this exactly;
    the chaos suite pins resumed == uninterrupted through it.
    """
    estimates = result.estimates
    if isinstance(estimates, dict):
        estimate_list = list(estimates.values())
    else:
        estimate_list = list(estimates)
    stats = result.stats
    guarantee = result.guarantee
    return {
        "attributes": list(result.attributes),
        "estimates": [
            (e.attribute, e.estimate, e.lower, e.upper, e.sample_size)
            for e in estimate_list
        ],
        "stats": {
            "iterations": stats.iterations,
            "final_sample_size": stats.final_sample_size,
            "population_size": stats.population_size,
            "cells_scanned": stats.cells_scanned,
            "candidates_pruned": stats.candidates_pruned,
        },
        "guarantee": (
            None
            if guarantee is None
            else {
                "guarantee_met": guarantee.guarantee_met,
                "stopping_reason": guarantee.stopping_reason,
                "requested_epsilon": guarantee.requested_epsilon,
                "achieved_epsilon": guarantee.achieved_epsilon,
            }
        ),
    }


def plan_fingerprint(plan_result: "PlanResult") -> dict[str, Any]:
    """Deterministic projection of a whole :class:`~repro.core.plan.PlanResult`."""
    stats = plan_result.stats
    return {
        "results": {
            name: result_fingerprint(result)
            for name, result in plan_result.results.items()
        },
        "stats": {
            "queries": stats.queries,
            "queries_completed": stats.queries_completed,
            "cells_scanned": stats.cells_scanned,
            "per_query_cells": dict(stats.per_query_cells),
            "sample_floor": stats.sample_floor,
            "population_size": stats.population_size,
        },
    }
