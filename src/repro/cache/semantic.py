"""Semantic answer reuse: replay recorded interval histories.

A retired SWOPE answer dominates a whole family of weaker requests: a
filter decided against ``η`` can answer any ``η′ >= η`` (every interval
narrow enough to decide against ``η`` by the paper's rule 1 is narrow
enough for ``η′``, since the rule-1 goal ``2εη′`` only widens), and a
top-``k`` answer can answer any ``k′ <= k`` (the ``k′``-th largest upper
bound is no smaller and the answer set's worst width no larger, so the
Definition 5 stopping quantity only improves). This module turns that
dominance into *bit-identical* derived answers by replaying the exact
decision rules of :mod:`repro.core.engine` over the per-iteration
interval history the cache recorded — same sample sizes, same bounds,
same tie-breaks — instead of re-deriving anything from final estimates.

The replay is deliberately *partial*: it serves only when the recorded
history provably contains every interval the derived run would have
consulted. An attribute the cached run retired early by rule 2/3 (its
interval still wide, but far from ``η``) has no later bounds on record;
if the derived threshold ``η′`` still needs them, the replay returns
``None`` and the caller falls back to a fresh execution. A refusal is
always safe — reuse is an optimisation, never an approximation.

Histories are lists of ``(sample_size, {attribute: (lower, upper,
width, midpoint)})`` — note ``width`` and ``midpoint`` are recorded
explicitly because the paper's stopping quantities use the *unclipped*
interval algebra (``width = 2λ + b``), which is not recoverable from
the clipped ``(lower, upper)`` pair alone.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence

from repro.core.results import (
    AttributeEstimate,
    FilterResult,
    GuaranteeStatus,
    RunStats,
    TopKResult,
)

__all__ = ["Bounds", "History", "replay_filter", "replay_top_k"]

#: One recorded interval: ``(lower, upper, width, midpoint)``.
Bounds = tuple[float, float, float, float]

#: One query's per-iteration history: ``(sample_size, {attribute: bounds})``.
History = Sequence[tuple[int, Mapping[str, Bounds]]]


def _estimate(attribute: str, entry: Bounds, sample_size: int) -> AttributeEstimate:
    """The engine's estimate construction, byte for byte."""
    lower, upper, _width, midpoint = entry
    return AttributeEstimate(
        attribute=attribute,
        estimate=max(lower, min(upper, midpoint)),
        lower=lower,
        upper=upper,
        sample_size=sample_size,
    )


def _replay_stats(
    iterations: int, final_sample_size: int, population_size: int, pruned: int = 0
) -> RunStats:
    """Stats of a replayed run: real loop shape, zero work."""
    return RunStats(
        iterations=iterations,
        final_sample_size=final_sample_size,
        population_size=population_size,
        candidates_pruned=pruned,
    )


def replay_filter(
    history: History,
    candidates: Sequence[str],
    threshold: float,
    epsilon: float,
    population_size: int,
    *,
    target: str | None = None,
) -> FilterResult | None:
    """Replay a cached filter history against a (possibly higher) ``η``.

    Returns the :class:`~repro.core.results.FilterResult` a fresh run at
    ``threshold`` would produce, or ``None`` when the history does not
    cover every interval that run would need (see module docstring).
    """
    undecided = list(candidates)
    included: list[str] = []
    estimates: dict[str, AttributeEstimate] = {}
    iterations = 0
    final_sample_size = 0
    converged = False
    for sample_size, bounds in history:
        iterations += 1
        final_sample_size = sample_size
        still: list[str] = []
        for attribute in undecided:
            entry = bounds.get(attribute)
            if entry is None:
                # The cached run retired this attribute before η′ could
                # decide it — the history is insufficient, refuse.
                return None
            lower, upper, width, midpoint = entry
            decided = True
            if width < 2.0 * epsilon * threshold:
                if midpoint >= threshold:
                    included.append(attribute)
            elif lower >= (1.0 - epsilon) * threshold:
                included.append(attribute)
            elif upper < (1.0 + epsilon) * threshold:
                pass  # excluded
            else:
                decided = False
                still.append(attribute)
            if decided:
                estimates[attribute] = _estimate(attribute, entry, sample_size)
        undecided = still
        if not undecided:
            converged = True
            break
    if not converged:
        return None
    included.sort(key=lambda a: estimates[a].estimate, reverse=True)
    guarantee = GuaranteeStatus(
        guarantee_met=True,
        stopping_reason="converged",
        requested_epsilon=epsilon,
        achieved_epsilon=epsilon,
        undecided=(),
    )
    return FilterResult(
        attributes=included,
        estimates=estimates,
        stats=_replay_stats(iterations, final_sample_size, population_size),
        threshold=threshold,
        target=target,
        guarantee=guarantee,
    )


def replay_top_k(
    history: History,
    candidates: Sequence[str],
    k: int,
    epsilon: float,
    population_size: int,
    *,
    prune: bool = True,
    target: str | None = None,
) -> TopKResult | None:
    """Replay a cached top-``k`` history against a (possibly smaller) ``k``.

    Returns the :class:`~repro.core.results.TopKResult` a fresh run at
    ``k`` would produce, or ``None`` when the history does not cover it.
    """
    if not candidates:
        return None
    k_effective = min(k, len(candidates))
    live = list(candidates)
    iterations = 0
    pruned = 0
    final_sample_size = 0
    answer: list[tuple[str, Bounds]] = []
    converged = False
    last_index = len(history) - 1
    for index, (sample_size, bounds) in enumerate(history):
        iterations += 1
        final_sample_size = sample_size
        if any(attribute not in bounds for attribute in live):
            return None
        by_upper = sorted(live, key=lambda a: bounds[a][1], reverse=True)
        answer = [(a, bounds[a]) for a in by_upper[:k_effective]]
        upper_k = answer[-1][1][1]
        width_max = max(entry[2] for _, entry in answer)
        if upper_k <= 0.0 or (upper_k - width_max) / upper_k >= 1.0 - epsilon:
            converged = True
            break
        if index == last_index:
            # The derived run needs at least one iteration the cached
            # run never executed — refuse rather than extrapolate.
            return None
        if prune and len(live) > k_effective:
            lower_k = heapq.nlargest(
                k_effective, [bounds[a][0] for a in live]
            )[-1]
            survivors = [a for a in live if bounds[a][1] >= lower_k]
            pruned += len(live) - len(survivors)
            live = survivors
    if not converged:
        return None
    upper_k = answer[-1][1][1]
    width_max = max(entry[2] for _, entry in answer)
    achieved = 0.0 if upper_k <= 0.0 else width_max / upper_k
    guarantee = GuaranteeStatus(
        guarantee_met=True,
        stopping_reason="converged",
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
    )
    return TopKResult(
        attributes=[a for a, _ in answer],
        estimates=[_estimate(a, entry, final_sample_size) for a, entry in answer],
        stats=_replay_stats(
            iterations, final_sample_size, population_size, pruned
        ),
        k=k,
        target=target,
        guarantee=guarantee,
    )
