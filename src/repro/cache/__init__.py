"""Cross-plan counter and answer cache (see :mod:`repro.cache.store`).

Public surface: :class:`PlanCache` (partitioned by dataset + shuffle
fingerprints), :class:`CachePartition` (counter blocks + retired
answers with exact and semantic reuse), and the replay primitives of
:mod:`repro.cache.semantic`.
"""

from repro.cache.semantic import Bounds, History, replay_filter, replay_top_k
from repro.cache.store import (
    CACHE_FORMAT,
    CACHE_SCHEMA_VERSION,
    CachedAnswer,
    CachePartition,
    PlanCache,
    ServedAnswer,
    partition_filename,
)

__all__ = [
    "CACHE_FORMAT",
    "CACHE_SCHEMA_VERSION",
    "Bounds",
    "CachePartition",
    "CachedAnswer",
    "History",
    "PlanCache",
    "ServedAnswer",
    "partition_filename",
    "replay_filter",
    "replay_top_k",
]
