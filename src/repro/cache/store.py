"""Persistent cross-plan counter and answer cache.

The paper's prefix-sampling structure makes caching unusually clean:
for a fixed dataset *and a fixed shuffle*, the marginal counter of an
attribute at prefix length ``M`` is a pure function of ``(dataset,
shuffle, attribute, M)`` — valid forever, reusable by any later
session. Likewise a retired answer, together with the per-iteration
interval history that produced it, is a pure function of the query
shape. This module stores both:

* **Counter blocks** — the largest counted prefix seen per attribute
  (and per joint pair), absorbed from a sampler's state snapshot at
  flush time and served back to a later sampler that reaches the same
  prefix, skipping the counting work for every cached row.
* **Retired answers** — the full result payload plus its interval
  history, served back *exactly* (same parameters) or *semantically*
  (a dominated ``η′ >= η`` / ``k′ <= k`` request, replayed by
  :mod:`repro.cache.semantic`).

Cache state is partitioned by ``(dataset fingerprint, shuffle
fingerprint)`` — both sha256 digests — because counters from a
different dataset *or* a different row order are garbage for this one.
There is deliberately no way to read or write cache state without
naming the fingerprint (enforced tree-wide by analysis rule SWP017).

On disk each partition is one JSON file using the checkpoint envelope
discipline (format marker, schema version, payload sha256, atomic
replace via :mod:`repro.durability.atomic`). Unlike checkpoints,
though, a bad cache file is *not* an error: a cache miss is always
safe, so corruption, version skew, or checksum mismatch silently
degrade to an empty partition and the run proceeds cold.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.cache.semantic import Bounds, History, replay_filter, replay_top_k
from repro.core.results import FilterResult, TopKResult
from repro.data.joint import JointCounter
from repro.durability.atomic import atomic_write_text
from repro.durability.checkpoint import (
    decode_array,
    decode_joint_snapshot,
    encode_array,
    encode_joint_snapshot,
    result_from_payload,
    result_to_payload,
)
from repro.exceptions import CheckpointError

__all__ = [
    "CACHE_FORMAT",
    "CACHE_SCHEMA_VERSION",
    "CachePartition",
    "CachedAnswer",
    "PlanCache",
    "ServedAnswer",
    "partition_filename",
]

#: Envelope discriminator; a file without it is not a cache partition.
CACHE_FORMAT = "repro-plan-cache"

#: Bumped on any payload-layout change; mismatching files are treated as
#: empty (cache semantics: stale state degrades to a miss, never an error).
CACHE_SCHEMA_VERSION = 1

QueryResult = Union[TopKResult, FilterResult]

#: Exceptions that turn a cache-file read into an empty partition.
_LOAD_ERRORS = (
    OSError,
    ValueError,  # includes json.JSONDecodeError
    KeyError,
    TypeError,
    AttributeError,
    CheckpointError,  # corrupt array payloads from the shared codecs
)


def partition_filename(fingerprint: str, shuffle: str) -> str:
    """File name of one ``(dataset fingerprint, shuffle)`` partition."""
    digest = hashlib.sha256(f"{fingerprint}\n{shuffle}".encode("utf-8"))
    return f"part-{digest.hexdigest()[:32]}.json"


def _canonical(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _copy_joint_snapshot(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Own a sampler's live joint snapshot (its arrays must not be kept)."""
    out: dict[str, Any] = {
        "support_first": int(snapshot["support_first"]),
        "support_second": int(snapshot["support_second"]),
        "total": int(snapshot["total"]),
    }
    if "dense" in snapshot:
        out["dense"] = np.asarray(snapshot["dense"]).copy()
    else:
        out["sparse_codes"] = np.asarray(snapshot["sparse_codes"]).copy()
        out["sparse_counts"] = np.asarray(snapshot["sparse_counts"]).copy()
    return out


@dataclass(frozen=True)
class CachedAnswer:
    """One retired answer with the history needed for semantic replay.

    The *family* fields identify runs that are interchangeable up to the
    query parameter: same kind, score, ``ε``, failure probability,
    schedule start (the floor-ratcheted first sample size — two runs
    starting at different sizes walk different schedules and are not
    comparable), target, candidate tuple, and pruning mode. ``param`` is
    the threshold ``η`` for filters and ``k`` for top-k.
    """

    kind: str
    score: str
    epsilon: float
    failure_probability: float
    schedule_start: int
    target: str | None
    candidates: tuple[str, ...]
    prune: bool
    param: float
    history: tuple[tuple[int, dict[str, Bounds]], ...]
    result: dict[str, Any]

    @property
    def family(
        self,
    ) -> tuple[str, str, float, float, int, str | None, tuple[str, ...], bool]:
        return (
            self.kind,
            self.score,
            self.epsilon,
            self.failure_probability,
            self.schedule_start,
            self.target,
            self.candidates,
            self.prune,
        )


@dataclass(frozen=True)
class ServedAnswer:
    """A cache hit: the rebuilt result plus how it was derived.

    ``mode`` is ``"exact"`` (stored result, work stats zeroed and moved
    into ``cells_saved``) or ``"semantic"`` (replayed from a dominating
    entry's history; ``source_param`` names the entry that served it).
    """

    result: QueryResult
    mode: str
    source_param: float


class CachePartition:
    """Counter blocks and retired answers of one (dataset, shuffle) pair.

    Construct via :meth:`PlanCache.partition` — the keyword-only
    fingerprints are the cache key and must always be spelled at the
    call site (analysis rule SWP017 flags fingerprint-free access).
    """

    def __init__(self, *, fingerprint: str, shuffle: str) -> None:
        self.fingerprint = fingerprint
        self.shuffle = shuffle
        # attribute -> (prefix, counts); only the largest prefix is kept.
        self._marginals: dict[str, tuple[int, np.ndarray]] = {}
        # (first, second) [key order] -> (prefix, owned joint snapshot).
        self._joints: dict[tuple[str, str], tuple[int, dict[str, Any]]] = {}
        self._answers: list[CachedAnswer] = []
        self._dirty = False

    # ------------------------------------------------------------------
    # Counter blocks (repro.data.sampling.CounterCache protocol)
    # ------------------------------------------------------------------
    def best_marginal(
        self, name: str, counted: int, num_rows: int
    ) -> tuple[int, np.ndarray] | None:
        """A cached counter for ``name`` covering ``(counted, num_rows]``.

        Counters only grow, so a cached prefix is usable exactly when it
        lies strictly beyond what the sampler already counted and at or
        before the prefix it is about to extend to. Returns a *writable
        copy* — the sampler will keep extending it in place.
        """
        entry = self._marginals.get(name)
        if entry is None:
            return None
        prefix, counts = entry
        if counted < prefix <= num_rows:
            return prefix, counts.copy()
        return None

    def best_joint(
        self, first: str, second: str, counted: int, num_rows: int
    ) -> tuple[int, JointCounter] | None:
        """Like :meth:`best_marginal` for the joint pair ``(first, second)``.

        ``first``/``second`` are taken in the sampler's canonical key
        order (lexicographic); the returned counter is a deep copy.
        """
        key = (first, second) if first <= second else (second, first)
        entry = self._joints.get(key)
        if entry is None:
            return None
        prefix, snapshot = entry
        if counted < prefix <= num_rows:
            return prefix, JointCounter.from_snapshot(snapshot)
        return None

    def absorb_sampler_state(self, state: dict[str, Any]) -> None:
        """Keep the deepest counted prefix per counter from a snapshot.

        ``state`` is :meth:`~repro.data.sampling.PrefixSampler.state_snapshot`
        output with live arrays; everything kept is copied.
        """
        marginals = state["marginals"]
        for name, entry in marginals.items():
            counted = int(entry["counted"])
            if counted <= 0:
                continue
            current = self._marginals.get(name)
            if current is None or current[0] < counted:
                self._marginals[str(name)] = (
                    counted,
                    np.asarray(entry["counts"]).copy(),
                )
                self._dirty = True
        for joint in state["joints"]:
            counted = int(joint["counted"])
            if counted <= 0:
                continue
            key = (str(joint["first"]), str(joint["second"]))
            current = self._joints.get(key)
            if current is None or current[0] < counted:
                self._joints[key] = (
                    counted,
                    _copy_joint_snapshot(joint["counter"]),
                )
                self._dirty = True

    # ------------------------------------------------------------------
    # Retired answers
    # ------------------------------------------------------------------
    def put_answer(
        self,
        *,
        kind: str,
        score: str,
        epsilon: float,
        failure_probability: float,
        schedule_start: int,
        candidates: tuple[str, ...],
        target: str | None,
        prune: bool,
        param: float,
        history: History,
        result: QueryResult,
    ) -> None:
        """Store a retired answer; non-converged results are refused.

        A result whose guarantee was not met (budget exhaustion,
        cancellation) says nothing reusable about the data — only
        ``converged`` answers enter the cache.
        """
        guarantee = result.guarantee
        if guarantee is None or not guarantee.guarantee_met:
            return
        if not history:
            return
        entry = CachedAnswer(
            kind=kind,
            score=score,
            epsilon=epsilon,
            failure_probability=failure_probability,
            schedule_start=schedule_start,
            target=target,
            candidates=tuple(candidates),
            prune=prune,
            param=param,
            history=tuple(
                (int(size), dict(bounds)) for size, bounds in history
            ),
            result=result_to_payload(result),
        )
        family = entry.family
        self._answers = [
            e
            for e in self._answers
            if not (e.family == family and e.param == param)
        ]
        self._answers.append(entry)
        self._dirty = True

    def lookup_answer(
        self,
        *,
        kind: str,
        score: str,
        epsilon: float,
        failure_probability: float,
        schedule_start: int,
        candidates: tuple[str, ...],
        target: str | None,
        prune: bool,
        param: float,
        population_size: int,
    ) -> ServedAnswer | None:
        """Serve a stored or dominated answer for this query shape.

        Exact match first. Otherwise semantic reuse walks dominating
        entries nearest-first — for a filter, stored thresholds
        ``η <= η′`` descending; for top-k, stored ``k >= k′`` ascending —
        and replays each history until one covers the request. Replay
        refusal (history insufficient) falls through to the next entry,
        then to a miss.
        """
        family = (
            kind,
            score,
            epsilon,
            failure_probability,
            schedule_start,
            target,
            tuple(candidates),
            prune,
        )
        entries = [e for e in self._answers if e.family == family]
        for entry in entries:
            if entry.param == param:
                return ServedAnswer(
                    self._rebuild_exact(entry), "exact", entry.param
                )
        if kind == "filter":
            dominating = sorted(
                (e for e in entries if e.param <= param),
                key=lambda e: -e.param,
            )
        else:
            dominating = sorted(
                (e for e in entries if e.param >= param),
                key=lambda e: e.param,
            )
        for entry in dominating:
            derived: QueryResult | None
            if kind == "filter":
                derived = replay_filter(
                    entry.history,
                    entry.candidates,
                    param,
                    epsilon,
                    population_size,
                    target=target,
                )
            else:
                derived = replay_top_k(
                    entry.history,
                    entry.candidates,
                    int(param),
                    epsilon,
                    population_size,
                    prune=prune,
                    target=target,
                )
            if derived is not None:
                return ServedAnswer(derived, "semantic", entry.param)
        return None

    @staticmethod
    def _rebuild_exact(entry: CachedAnswer) -> QueryResult:
        """Fresh result object for an exact hit, with honest work stats.

        The stored stats describe the run that *produced* the answer;
        serving it does no counting, so the work fields are zeroed and
        the avoided work lands in ``cells_saved``. Loop-shape fields
        (iterations, final sample size, pruning) are kept — they
        describe the answer, not this serve.
        """
        result = result_from_payload(entry.result)
        stats = result.stats
        stats.cells_saved = stats.cells_saved + stats.cells_scanned
        stats.cells_scanned = 0
        stats.wall_seconds = 0.0
        stats.counting_seconds = 0.0
        stats.bounds_seconds = 0.0
        stats.trace_event_count = 0
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """Whether this partition holds state not yet written to disk."""
        return self._dirty

    def mark_clean(self) -> None:
        self._dirty = False

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready partition payload (arrays via the checkpoint codecs)."""
        return {
            "fingerprint": self.fingerprint,
            "shuffle": self.shuffle,
            "marginals": {
                name: {"counted": counted, "counts": encode_array(counts)}
                for name, (counted, counts) in sorted(self._marginals.items())
            },
            "joints": [
                {
                    "first": key[0],
                    "second": key[1],
                    "counted": counted,
                    "counter": encode_joint_snapshot(snapshot),
                }
                for key, (counted, snapshot) in sorted(self._joints.items())
            ],
            "answers": [
                {
                    "kind": e.kind,
                    "score": e.score,
                    "epsilon": e.epsilon,
                    "failure_probability": e.failure_probability,
                    "schedule_start": e.schedule_start,
                    "target": e.target,
                    "candidates": list(e.candidates),
                    "prune": e.prune,
                    "param": e.param,
                    "history": [
                        [size, {a: list(b) for a, b in bounds.items()}]
                        for size, bounds in e.history
                    ],
                    "result": e.result,
                }
                for e in self._answers
            ],
        }

    def load_payload(self, payload: dict[str, Any]) -> None:
        """Populate from a decoded payload (raises on malformed input)."""
        marginals: dict[str, tuple[int, np.ndarray]] = {}
        for name, entry in payload["marginals"].items():
            marginals[str(name)] = (
                int(entry["counted"]),
                np.asarray(decode_array(entry["counts"]), dtype=np.int64),
            )
        joints: dict[tuple[str, str], tuple[int, dict[str, Any]]] = {}
        for joint in payload["joints"]:
            key = (str(joint["first"]), str(joint["second"]))
            joints[key] = (
                int(joint["counted"]),
                decode_joint_snapshot(joint["counter"]),
            )
        answers: list[CachedAnswer] = []
        for raw in payload["answers"]:
            target = raw["target"]
            history = tuple(
                (
                    int(size),
                    {
                        str(a): (
                            float(b[0]),
                            float(b[1]),
                            float(b[2]),
                            float(b[3]),
                        )
                        for a, b in bounds.items()
                    },
                )
                for size, bounds in raw["history"]
            )
            answers.append(
                CachedAnswer(
                    kind=str(raw["kind"]),
                    score=str(raw["score"]),
                    epsilon=float(raw["epsilon"]),
                    failure_probability=float(raw["failure_probability"]),
                    schedule_start=int(raw["schedule_start"]),
                    target=None if target is None else str(target),
                    candidates=tuple(str(a) for a in raw["candidates"]),
                    prune=bool(raw["prune"]),
                    param=float(raw["param"]),
                    history=history,
                    result=dict(raw["result"]),
                )
            )
        # All-or-nothing: only replace state once the whole payload parsed.
        self._marginals = marginals
        self._joints = joints
        self._answers = answers


@dataclass
class PlanCache:
    """Partitioned plan cache, in-memory or backed by a directory.

    With ``directory=None`` the cache lives only for the process —
    useful for sharing work between executors in one session and for
    tests. With a directory, each partition loads lazily on first
    access and :meth:`flush` writes dirty partitions atomically.
    """

    directory: Path | None = None
    _partitions: dict[tuple[str, str], CachePartition] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.directory is not None:
            self.directory = Path(self.directory)

    def partition(self, *, fingerprint: str, shuffle: str) -> CachePartition:
        """The partition for one (dataset fingerprint, shuffle) pair.

        Both keys are mandatory and keyword-only: there is no such thing
        as cache state without a dataset identity (SWP017).
        """
        key = (fingerprint, shuffle)
        part = self._partitions.get(key)
        if part is None:
            part = CachePartition(fingerprint=fingerprint, shuffle=shuffle)
            if self.directory is not None:
                self._load_partition(part)
            self._partitions[key] = part
        return part

    def _load_partition(self, part: CachePartition) -> None:
        """Read a partition file; any defect degrades to an empty partition."""
        assert self.directory is not None
        path = self.directory / partition_filename(
            part.fingerprint, part.shuffle
        )
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if document.get("format") != CACHE_FORMAT:
                return
            if document.get("schema_version") != CACHE_SCHEMA_VERSION:
                return  # stale schema: start cold, never migrate
            payload = document["payload"]
            digest = hashlib.sha256(
                _canonical(payload).encode("utf-8")
            ).hexdigest()
            if document.get("sha256") != digest:
                return  # corrupt: start cold
            if (
                payload.get("fingerprint") != part.fingerprint
                or payload.get("shuffle") != part.shuffle
            ):
                return  # foreign partition under our name: start cold
            part.load_payload(payload)
        except _LOAD_ERRORS:
            return

    def flush(self) -> None:
        """Atomically write every dirty partition (no-op when in-memory)."""
        if self.directory is None:
            return
        dirty = [p for p in self._partitions.values() if p.dirty]
        if not dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        for part in dirty:
            payload = part.to_payload()
            envelope = {
                "format": CACHE_FORMAT,
                "schema_version": CACHE_SCHEMA_VERSION,
                "sha256": hashlib.sha256(
                    _canonical(payload).encode("utf-8")
                ).hexdigest(),
                "payload": payload,
            }
            atomic_write_text(
                self.directory
                / partition_filename(part.fingerprint, part.shuffle),
                json.dumps(envelope, sort_keys=True, separators=(",", ":")),
            )
            part.mark_clean()
