"""Watch the Lemma 3 bounds tighten and the stopping rule fire.

Run with::

    python examples/bound_convergence.py

Traces a SWOPE entropy top-1 query iteration by iteration: for each
sample size it prints the confidence interval of the leading attributes
and whether the Algorithm 1 stopping rule fired — a direct view of the
mechanism Section 3.1 of the paper describes. A second trace of the same
query at a tighter ε shows how the loop keeps doubling until the
intervals are narrow enough for the stronger guarantee.
"""

from __future__ import annotations

import os

import numpy as np

from repro import ColumnStore, QueryTrace, swope_top_k_entropy


def build_store(num_rows: int) -> ColumnStore:
    rng = np.random.default_rng(13)
    return ColumnStore(
        {
            "leader": rng.integers(0, 200, num_rows),  # top entropy ~7.6
            "runner_up": rng.integers(0, 150, num_rows),
            "mid": rng.integers(0, 12, num_rows),
            "low": (rng.random(num_rows) < 0.1).astype(np.int64),
        }
    )


def show_trace(store: ColumnStore, epsilon: float) -> None:
    trace = QueryTrace()
    result = swope_top_k_entropy(store, 1, epsilon=epsilon, seed=0, trace=trace)
    print(f"--- epsilon = {epsilon} ---")
    for snapshot in trace.iterations:
        leader_bounds = snapshot.bounds.get("leader")
        runner_bounds = snapshot.bounds.get("runner_up")
        parts = [f"M={snapshot.sample_size:>7,}"]
        if leader_bounds:
            parts.append(
                f"leader=[{leader_bounds[0]:5.2f}, {leader_bounds[1]:5.2f}]"
            )
        if runner_bounds:
            parts.append(
                f"runner_up=[{runner_bounds[0]:5.2f}, {runner_bounds[1]:5.2f}]"
            )
        parts.append(f"alive={len(snapshot.candidates)}")
        parts.append("STOP" if snapshot.stopped else "double")
        print("  " + "  ".join(parts))
    stats = result.stats
    print(
        f"  answer: {result.attributes}   sampled"
        f" {stats.final_sample_size:,}/{stats.population_size:,} rows\n"
    )


def main() -> None:
    num_rows = int(200_000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))
    store = build_store(max(5000, num_rows))
    print(
        f"entropy top-1 over {store.num_rows:,} rows; watch the interval of"
        " each attribute narrow\nuntil the stopping rule"
        " (width of the k-th upper bound <= epsilon fraction) fires:\n"
    )
    for epsilon in (0.5, 0.1, 0.02):
        show_trace(store, epsilon)
    print(
        "smaller epsilon -> the loop needs narrower intervals -> more"
        " doublings before STOP."
    )


if __name__ == "__main__":
    main()
