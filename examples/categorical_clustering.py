"""Entropy-based categorical clustering (COOLCAT, paper ref [4]).

Run with::

    python examples/categorical_clustering.py

The paper cites categorical clustering as one of the applications of
empirical entropy. This example plants three customer segments in a
synthetic categorical table, recovers them with the COOLCAT-style
expected-entropy clusterer from :mod:`repro.applications.clustering`, and
shows how the entropy objective separates good clusterings from random
ones.
"""

from __future__ import annotations

import os

import numpy as np

from repro.applications.clustering import coolcat_cluster, expected_entropy
from repro.data.column_store import ColumnStore


def build_segments(rows_per_segment: int = 1200) -> tuple[ColumnStore, np.ndarray]:
    """Three customer segments with distinct categorical profiles."""
    rng = np.random.default_rng(23)
    segments = []
    labels = []
    # segment 0: values drawn from {0,1}; segment 1: {3,4}; segment 2: {6,7}
    for segment, base in enumerate((0, 3, 6)):
        segments.append(
            {
                "plan": base + rng.integers(0, 2, rows_per_segment),
                "device": base + rng.integers(0, 2, rows_per_segment),
                "region": base + rng.integers(0, 2, rows_per_segment),
                "channel": base + rng.integers(0, 2, rows_per_segment),
            }
        )
        labels.append(np.full(rows_per_segment, segment))
    columns = {
        name: np.concatenate([s[name] for s in segments])
        for name in segments[0]
    }
    return ColumnStore(columns), np.concatenate(labels)


def purity(assignments: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Mean over clusters of the dominant true-segment fraction."""
    total = 0
    for cluster in range(k):
        members = truth[assignments == cluster]
        if members.size:
            total += np.bincount(members).max()
    return total / truth.size


def main() -> None:
    rows = int(1200 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))
    store, truth = build_segments(max(150, rows))
    k = 3
    print(f"clustering {store.num_rows:,} records x {store.num_attributes}"
          f" attributes into k={k} clusters\n")

    result = coolcat_cluster(store, k=k, seed=0)
    rng = np.random.default_rng(0)
    random_assignments = rng.integers(0, k, store.num_rows)

    print(f"cluster sizes        : {result.cluster_sizes().tolist()}")
    print(f"purity vs planted    : {purity(result.assignments, truth, k):.1%}")
    print(f"expected entropy     : {result.expected_entropy:.3f} bits"
          " (the COOLCAT objective; lower = more homogeneous clusters)")
    print(
        "random assignment    :"
        f" {expected_entropy(store, random_assignments, k):.3f} bits"
    )
    perfect = expected_entropy(store, truth, k)
    print(f"planted segmentation : {perfect:.3f} bits (the optimum)")


if __name__ == "__main__":
    main()
