"""Quickstart: the four SWOPE queries on a small categorical table.

Run with::

    python examples/quickstart.py

Builds a toy survey table, encodes it, and answers the paper's four query
types — entropy top-k, entropy filtering, MI top-k, and MI filtering —
printing the answers alongside the exact scores for comparison.
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    encode_table,
    exact_entropies,
    exact_mutual_informations,
    swope_filter_entropy,
    swope_filter_mutual_information,
    swope_top_k_entropy,
    swope_top_k_mutual_information,
)


def build_table(num_rows: int = 50_000) -> dict[str, np.ndarray]:
    """A synthetic survey: a few demographic-style categorical columns."""
    rng = np.random.default_rng(7)
    age_band = rng.integers(0, 9, num_rows)  # fairly uniform: high entropy
    region = rng.integers(0, 50, num_rows)  # very high entropy
    employed = (rng.random(num_rows) < 0.9).astype(int)  # skewed: low entropy
    # income depends on age band (noisy copy): positive MI with age_band
    income = np.where(
        rng.random(num_rows) < 0.6, age_band, rng.integers(0, 9, num_rows)
    )
    hobby = rng.integers(0, 12, num_rows)  # independent of everything
    return {
        "age_band": age_band,
        "region": region,
        "employed": employed,
        "income": income,
        "hobby": hobby,
    }


def main() -> None:
    num_rows = int(50_000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))
    store, _ = encode_table(build_table(max(2000, num_rows)))
    print(f"dataset: {store.num_rows:,} rows x {store.num_attributes} attributes\n")

    print("exact empirical entropies (bits):")
    for name, score in sorted(exact_entropies(store).items(), key=lambda t: -t[1]):
        print(f"  {name:10s} {score:6.3f}")

    result = swope_top_k_entropy(store, k=2, epsilon=0.1, seed=0)
    stats = result.stats
    print(
        f"\ntop-2 by entropy (SWOPE): {result.attributes}"
        f"  [sampled {stats.final_sample_size:,}/{stats.population_size:,}"
        f" rows in {stats.iterations} iterations]"
    )

    filtered = swope_filter_entropy(store, threshold=3.0, epsilon=0.05, seed=0)
    print(f"attributes with entropy >= 3.0 (SWOPE): {filtered.attributes}")

    target = "income"
    print(f"\nexact MI against target {target!r} (bits):")
    for name, score in sorted(
        exact_mutual_informations(store, target).items(), key=lambda t: -t[1]
    ):
        print(f"  {name:10s} {score:6.3f}")

    mi_top = swope_top_k_mutual_information(store, target, k=1, epsilon=0.5, seed=0)
    print(f"most informative attribute about {target!r} (SWOPE): {mi_top.attributes}")

    mi_filtered = swope_filter_mutual_information(
        store, target, threshold=0.2, epsilon=0.5, seed=0
    )
    print(f"attributes with MI(income, .) >= 0.2 (SWOPE): {mi_filtered.attributes}")


if __name__ == "__main__":
    main()
