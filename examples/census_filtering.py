"""Census-style attribute screening with filtering queries.

Run with::

    python examples/census_filtering.py

Mirrors the paper's headline use case: a wide census extract where an
analyst wants every attribute informative enough to keep (empirical
entropy above a threshold), without paying for a full scan of tens of
millions of cells. Walks the full workflow: support-size preprocessing
(paper Section 6.1), the SWOPE approximate filter, the exact-answer
EntropyFilter baseline, and a cost/answer comparison.
"""

from __future__ import annotations

import os

from repro import (
    drop_high_support_columns,
    entropy_filter,
    exact_filter_entropy,
    swope_filter_entropy,
)
from repro.synth.datasets import load_dataset


def main() -> None:
    scale = 0.2 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
    dataset = load_dataset("pus", scale=max(0.01, scale))  # widest analogue: 179 columns
    store = dataset.store
    print(
        f"raw dataset: {store.num_rows:,} rows x {store.num_attributes} columns"
    )
    store = drop_high_support_columns(store)  # paper cutoff: support <= 1000
    print(f"after support-size filter: {store.num_attributes} columns\n")

    threshold = 2.0
    swope = swope_filter_entropy(store, threshold, epsilon=0.05, seed=0)
    baseline = entropy_filter(store, threshold, seed=0)
    exact = exact_filter_entropy(store, threshold)

    print(f"attributes with empirical entropy >= {threshold} bits:")
    print(f"  exact        : {len(exact.attributes)} attributes")
    print(f"  EntropyFilter: {len(baseline.attributes)} attributes")
    print(f"  SWOPE        : {len(swope.attributes)} attributes")

    missed = exact.answer_set() - swope.answer_set()
    spurious = swope.answer_set() - exact.answer_set()
    print(f"\nSWOPE vs exact: missed={sorted(missed)} spurious={sorted(spurious)}")
    print("(only attributes within ±5% of the threshold may legally differ)")

    def cost(result):
        return (
            f"{result.stats.cells_scanned / 1e6:7.2f}M cells,"
            f" {result.stats.wall_seconds * 1000:7.1f}ms,"
            f" sampled {result.stats.sample_fraction:6.1%} of rows"
        )

    print(f"\ncost  exact        : {cost(exact)}")
    print(f"cost  EntropyFilter: {cost(baseline)}")
    print(f"cost  SWOPE        : {cost(swope)}")
    speedup = exact.stats.cells_scanned / max(1, swope.stats.cells_scanned)
    print(f"\nSWOPE reads {speedup:.1f}x fewer cells than the exact scan")

    print("\nten attributes closest to the threshold (the hard cases):")
    ranked = sorted(
        swope.estimates.values(), key=lambda e: abs(e.estimate - threshold)
    )
    for est in ranked[:10]:
        marker = "IN " if est.attribute in swope else "out"
        print(
            f"  [{marker}] {est.attribute:16s} estimate={est.estimate:6.3f}"
            f" bounds=[{est.lower:6.3f}, {est.upper:6.3f}]"
            f" decided at M={est.sample_size:,}"
        )


if __name__ == "__main__":
    main()
