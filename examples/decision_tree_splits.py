"""Decision-tree split selection driven by approximate MI top-1 queries.

Run with::

    python examples/decision_tree_splits.py

Decision-tree learning (paper refs [3, 27, 33]) chooses at each node the
attribute with the highest information gain about the label — exactly an
MI top-1 query against the label on the records reaching that node. This
example grows a small tree where every split decision is answered by
SWOPE instead of an exact scan, and verifies each chosen split against
the exact answer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import (
    ColumnStore,
    exact_mutual_informations,
    swope_top_k_mutual_information,
)


@dataclass
class Node:
    depth: int
    num_rows: int
    split: str | None = None
    children: dict[int, "Node"] | None = None
    majority: int = 0


def build_table(num_rows: int = 60_000) -> ColumnStore:
    """Label = f(weather, temperature) with noise; two decoy columns."""
    rng = np.random.default_rng(11)
    weather = rng.integers(0, 3, num_rows)  # sunny / rain / snow
    temperature = rng.integers(0, 4, num_rows)  # cold ... hot
    decoy_a = rng.integers(0, 8, num_rows)
    decoy_b = rng.integers(0, 2, num_rows)
    label = ((weather == 0) & (temperature >= 2)).astype(int)
    noise = rng.random(num_rows) < 0.05
    label = np.where(noise, 1 - label, label)
    return ColumnStore(
        {
            "weather": weather,
            "temperature": temperature,
            "decoy_a": decoy_a,
            "decoy_b": decoy_b,
            "label": label,
        }
    )


def grow(
    store: ColumnStore,
    rows: np.ndarray,
    features: list[str],
    depth: int,
    max_depth: int = 2,
    min_rows: int = 2000,
) -> Node:
    """Grow one node; the split choice is a SWOPE MI top-1 query."""
    node = Node(depth=depth, num_rows=rows.size)
    label_values = store.column("label")[rows]
    node.majority = int(np.bincount(label_values, minlength=2).argmax())
    if depth >= max_depth or rows.size < min_rows or not features:
        return node
    subset = store.take(rows)
    result = swope_top_k_mutual_information(
        subset, "label", k=1, epsilon=0.5, seed=depth, candidates=features
    )
    chosen = result.attributes[0]
    exact = exact_mutual_informations(subset, "label", candidates=features)
    exact_best = max(exact, key=exact.get)  # type: ignore[arg-type]
    sampled = result.stats.final_sample_size
    print(
        f"{'  ' * depth}depth {depth}: split on {chosen!r}"
        f" (exact best: {exact_best!r}; MI~{result.estimates[0].estimate:.3f};"
        f" sampled {sampled:,}/{rows.size:,})"
    )
    if exact[chosen] < 0.02:  # information gain too small to bother
        return node
    node.split = chosen
    node.children = {}
    remaining = [f for f in features if f != chosen]
    column = store.column(chosen)[rows]
    for value in np.unique(column):
        child_rows = rows[column == value]
        if child_rows.size == 0:
            continue
        node.children[int(value)] = grow(
            store, child_rows, remaining, depth + 1, max_depth, min_rows
        )
    return node


def accuracy(store: ColumnStore, node: Node, rows: np.ndarray) -> float:
    """Fraction of rows the grown tree classifies correctly."""
    labels = store.column("label")[rows]
    if node.split is None or not node.children:
        return float((labels == node.majority).mean()) if rows.size else 1.0
    column = store.column(node.split)[rows]
    correct = 0.0
    for value, child in node.children.items():
        mask = column == value
        if mask.any():
            child_rows = rows[mask]
            correct += accuracy(store, child, child_rows) * child_rows.size
    leftover = ~np.isin(column, list(node.children))
    correct += float((labels[leftover] == node.majority).sum())
    return correct / rows.size


def main() -> None:
    num_rows = int(60_000 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1")))
    store = build_table(max(4000, num_rows))
    features = ["weather", "temperature", "decoy_a", "decoy_b"]
    rows = np.arange(store.num_rows)
    print(f"growing a depth-2 tree on {store.num_rows:,} rows:\n")
    root = grow(store, rows, features, depth=0)
    acc = accuracy(store, root, rows)
    print(f"\ntraining accuracy of the grown tree: {acc:.1%}")
    print("(the true concept is label = (weather==sunny) & (temperature>=warm),")
    print(" so the tree should split on 'weather' then 'temperature')")


if __name__ == "__main__":
    main()
