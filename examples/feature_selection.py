"""Feature selection with approximate MI queries (the paper's motivation).

Run with::

    python examples/feature_selection.py

The paper's introduction motivates SWOPE with entropy/MI-based feature
selection over census-style data (mRMR and relatives, refs [12, 26, 31]).
This example implements a greedy **max-relevance min-redundancy** selector
whose expensive primitive — "which candidate has the highest mutual
information with the label?" — is answered by the SWOPE approximate top-k
query instead of exact full scans, and compares the selected feature sets
and costs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import (
    ColumnStore,
    exact_mutual_information,
    exact_mutual_informations,
    swope_top_k_mutual_information,
)
from repro.synth.datasets import load_dataset


def greedy_mrmr_exact(
    store: ColumnStore, label: str, num_features: int
) -> tuple[list[str], int]:
    """Classic greedy mRMR with exact MI (the expensive baseline).

    Relevance = I(feature, label); redundancy = mean I(feature, selected).
    Returns the selected features and the number of cells scanned.
    """
    candidates = [a for a in store.attributes if a != label]
    relevance = exact_mutual_informations(store, label)
    cells = 3 * len(candidates) * store.num_rows
    selected: list[str] = []
    while len(selected) < num_features and candidates:
        best, best_score = None, -np.inf
        for name in candidates:
            redundancy = 0.0
            for chosen in selected:
                redundancy += exact_mutual_information(store, name, chosen)
                cells += 3 * store.num_rows
            redundancy = redundancy / len(selected) if selected else 0.0
            score = relevance[name] - redundancy
            if score > best_score:
                best, best_score = name, score
        assert best is not None
        selected.append(best)
        candidates.remove(best)
    return selected, cells


def greedy_mrmr_swope(
    store: ColumnStore, label: str, num_features: int, *, shortlist: int = 10
) -> tuple[list[str], int]:
    """mRMR with the expensive relevance scan replaced by SWOPE.

    The approximate MI top-k query builds a small high-relevance shortlist
    at a fraction of the scan cost; the redundancy refinement then runs
    only over the shortlist.
    """
    top = swope_top_k_mutual_information(
        store, label, k=shortlist, epsilon=0.5, seed=0
    )
    cells = top.stats.cells_scanned
    relevance = {est.attribute: est.estimate for est in top.estimates}
    candidates = list(top.attributes)
    selected: list[str] = []
    while len(selected) < num_features and candidates:
        best, best_score = None, -np.inf
        for name in candidates:
            redundancy = 0.0
            for chosen in selected:
                redundancy += exact_mutual_information(store, name, chosen)
                cells += 3 * store.num_rows
            redundancy = redundancy / len(selected) if selected else 0.0
            score = relevance[name] - redundancy
            if score > best_score:
                best, best_score = name, score
        assert best is not None
        selected.append(best)
        candidates.remove(best)
    return selected, cells


def main() -> None:
    scale = 0.2 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
    dataset = load_dataset("cdc", scale=max(0.01, scale))
    store = dataset.store
    label = dataset.mi_targets[0]  # a target column with a rich MI landscape
    print(
        f"dataset: {store.num_rows:,} rows x {store.num_attributes} attributes;"
        f" label = {label!r}\n"
    )

    started = time.perf_counter()
    exact_features, exact_cells = greedy_mrmr_exact(store, label, num_features=5)
    exact_seconds = time.perf_counter() - started

    started = time.perf_counter()
    swope_features, swope_cells = greedy_mrmr_swope(store, label, num_features=5)
    swope_seconds = time.perf_counter() - started

    print(f"exact mRMR selected : {exact_features}")
    print(f"SWOPE mRMR selected : {swope_features}")
    overlap = len(set(exact_features) & set(swope_features))
    print(f"overlap             : {overlap}/5")
    print(
        f"\ncost  exact: {exact_cells / 1e6:7.1f}M cells, {exact_seconds:6.2f}s"
        f"\ncost  SWOPE: {swope_cells / 1e6:7.1f}M cells, {swope_seconds:6.2f}s"
        f"\nsaving     : {exact_cells / max(1, swope_cells):5.1f}x cells"
    )


if __name__ == "__main__":
    main()
