"""The accuracy/efficiency trade-off of the error parameter ε (Figs 9–12).

Run with::

    python examples/tuning_epsilon.py

Sweeps ε over the paper's grid for the entropy top-k query (k = 4) on the
cdc analogue and prints the cost/accuracy curve — the programmatic
counterpart of the paper's Section 6.4 tuning experiment, from which the
defaults ε = 0.1 (entropy top-k), 0.05 (entropy filter) and 0.5 (MI) were
chosen.
"""

from __future__ import annotations

import os

from repro import exact_entropies, swope_top_k_entropy
from repro.experiments.accuracy import top_k_accuracy
from repro.synth.datasets import load_dataset

EPSILONS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5)
K = 4


def main() -> None:
    scale = 0.2 * float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
    dataset = load_dataset("cdc", scale=max(0.01, scale))
    store = dataset.store
    exact = exact_entropies(store)
    exact_cells = store.num_attributes * store.num_rows
    print(
        f"dataset: {store.num_rows:,} rows x {store.num_attributes} columns;"
        f" entropy top-{K} query\n"
    )
    print(f"{'eps':>6s} {'cells':>10s} {'vs exact':>9s} {'sampled':>8s} {'accuracy':>9s}")
    for epsilon in EPSILONS:
        result = swope_top_k_entropy(store, K, epsilon=epsilon, seed=0)
        accuracy = top_k_accuracy(result.attributes, exact, K)
        cells = result.stats.cells_scanned
        print(
            f"{epsilon:6.3f} {cells / 1e6:9.2f}M {exact_cells / cells:8.1f}x"
            f" {result.stats.sample_fraction:7.1%} {accuracy:9.2%}"
        )
    print(
        "\nreading: cost falls as ε grows; accuracy stays near 100% until ε"
        " is large enough\nthat legally-interchangeable near-top attributes"
        " start swapping in — the paper picks ε = 0.1."
    )


if __name__ == "__main__":
    main()
